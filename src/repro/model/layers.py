"""Core neural-network building blocks with manual backpropagation.

Every module follows the same contract:

* ``forward(x)`` computes the output and caches what backward needs;
* ``backward(grad_out)`` consumes the upstream gradient, accumulates
  parameter gradients in place, and returns the input gradient;
* ``parameters()`` yields all :class:`Parameter` objects.

Shapes are ``(..., features)``: modules operate on the last axis and are
agnostic to leading batch/sequence axes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ModelError


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.shape})"


class Module:
    """Base class: parameter discovery and gradient reset."""

    def parameters(self) -> Iterator[Parameter]:
        """Yield this module's parameters, recursing into sub-modules."""
        for value in vars(self).values():
            if isinstance(value, Parameter):
                yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Parameter):
                        yield item

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def _require_cache(self, cache: object, op: str) -> None:
        if cache is None:
            raise ModelError(f"{op}.backward called before forward")


def init_weight(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot-uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, (fan_in, fan_out))


class Linear(Module):
    """Affine map on the last axis: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        name: str = "linear",
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ModelError("feature dimensions must be >= 1")
        self.weight = Parameter(
            init_weight(rng, in_features, out_features), f"{name}.weight"
        )
        self.bias = Parameter(np.zeros(out_features), f"{name}.bias")
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.weight.shape[0]:
            raise ModelError(
                f"expected last dim {self.weight.shape[0]}, got {x.shape[-1]}"
            )
        self._cache = x
        return x @ self.weight.data + self.bias.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._require_cache(self._cache, "Linear")
        x = self._cache
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad.reshape(-1, grad.shape[-1])
        self.weight.grad += flat_x.T @ flat_g
        self.bias.grad += flat_g.sum(axis=0)
        return grad @ self.weight.data.T


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x > 0
        return np.where(self._cache, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._require_cache(self._cache, "ReLU")
        return grad * self._cache


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    _C = np.sqrt(2.0 / np.pi)

    def __init__(self) -> None:
        self._cache: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        inner = self._C * (x + 0.044715 * x**3)
        tanh = np.tanh(inner)
        self._cache = (x, tanh)
        return 0.5 * x * (1.0 + tanh)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._require_cache(self._cache, "GELU")
        x, tanh = self._cache
        sech2 = 1.0 - tanh**2
        d_inner = self._C * (1.0 + 3 * 0.044715 * x**2)
        local = 0.5 * (1.0 + tanh) + 0.5 * x * sech2 * d_inner
        return grad * local


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        if features < 1:
            raise ModelError("features must be >= 1")
        self.gamma = Parameter(np.ones(features), "ln.gamma")
        self.beta = Parameter(np.zeros(features), "ln.beta")
        self._eps = eps
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self._eps)
        normed = (x - mean) * inv_std
        self._cache = (normed, inv_std)
        return normed * self.gamma.data + self.beta.data

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._require_cache(self._cache, "LayerNorm")
        normed, inv_std = self._cache
        flat_n = normed.reshape(-1, normed.shape[-1])
        flat_g = grad.reshape(-1, grad.shape[-1])
        self.gamma.grad += (flat_g * flat_n).sum(axis=0)
        self.beta.grad += flat_g.sum(axis=0)
        g = grad * self.gamma.data
        n = normed.shape[-1]
        # d/dx of (x - mean) * inv_std, with mean/var both functions of x.
        term1 = g
        term2 = g.mean(axis=-1, keepdims=True)
        term3 = normed * (g * normed).mean(axis=-1, keepdims=True)
        return inv_std * (term1 - term2 - term3)


class Embedding(Module):
    """Token-id lookup table."""

    def __init__(
        self, vocab_size: int, dim: int, rng: np.random.Generator
    ) -> None:
        if vocab_size < 1 or dim < 1:
            raise ModelError("vocab_size and dim must be >= 1")
        self.table = Parameter(
            rng.normal(0.0, 0.02, (vocab_size, dim)), "embedding.table"
        )
        self._cache: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids)
        if ids.max(initial=0) >= self.table.shape[0] or ids.min(initial=0) < 0:
            raise ModelError("token id out of vocabulary range")
        self._cache = ids
        return self.table.data[ids]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._require_cache(self._cache, "Embedding")
        ids = self._cache
        np.add.at(
            self.table.grad, ids.reshape(-1), grad.reshape(-1, grad.shape[-1])
        )
        return np.zeros(ids.shape + (0,))  # ids carry no gradient


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)
