"""The sparse Top-K gate network with auxiliary balance loss (Eq. 3).

``g(x) = softmax(TopK(x @ W_g))`` — logits are computed for every expert,
the top-k survive, and the combine weights are the softmax over the
surviving logits.

The balance loss is the GShard/Switch auxiliary:

``aux = E * sum_e f_e * P_e``

where ``f_e`` is the fraction of tokens whose top-1 choice is expert ``e``
(treated as constant w.r.t. gradients) and ``P_e`` the mean full-softmax
probability of ``e``. A perfectly uniform router scores ``aux = 1``; heavier
skew scores higher. The coefficient trades workload balance against model
quality — the exact trade-off Figure 2 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelError
from repro.model.layers import Module, Parameter, softmax


@dataclass
class GateStats:
    """Observability record of one gate invocation.

    Attributes:
        expert_counts: Tokens assigned to each expert (all k slots).
        top1_counts: Tokens whose first choice was each expert.
        balance_loss: Value of the auxiliary loss (before coefficient).
        mean_probs: Mean full-softmax probability per expert.
    """

    expert_counts: np.ndarray
    top1_counts: np.ndarray
    balance_loss: float
    mean_probs: np.ndarray


class TopKGate(Module):
    """Data-dependent sparse router.

    Args:
        d_model: Input feature size.
        num_experts: Number of experts to route over.
        top_k: Experts activated per token.
        balance_coef: Weight of the auxiliary balance loss added to the
            gradient during :meth:`backward` (0 disables it).
        rng: Initializer RNG.
        noise_std: Std of gaussian logit noise at routing time (Shazeer-
            style exploration); 0 disables.
    """

    def __init__(
        self,
        d_model: int,
        num_experts: int,
        top_k: int,
        balance_coef: float,
        rng: np.random.Generator,
        noise_std: float = 0.0,
    ) -> None:
        if not 1 <= top_k <= num_experts:
            raise ModelError("top_k must be in [1, num_experts]")
        if balance_coef < 0:
            raise ModelError("balance_coef must be >= 0")
        if noise_std < 0:
            raise ModelError("noise_std must be >= 0")
        self.num_experts = num_experts
        self.top_k = top_k
        self.balance_coef = balance_coef
        self.noise_std = noise_std
        self.w_gate = Parameter(
            rng.normal(0.0, 0.02, (d_model, num_experts)), "gate.w"
        )
        self._rng = rng
        self._cache: tuple | None = None
        self.last_stats: GateStats | None = None

    def forward(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Route a flat batch of tokens.

        Args:
            x: Tokens ``(N, d_model)``.

        Returns:
            ``(weights, indices)`` both ``(N, top_k)``: combine weights
            (softmax over the selected logits, summing to 1 per token) and
            the chosen expert ids, ordered best-first.
        """
        if x.ndim != 2 or x.shape[1] != self.w_gate.shape[0]:
            raise ModelError(
                f"expected (N, {self.w_gate.shape[0]}), got {x.shape}"
            )
        logits = x @ self.w_gate.data
        routing_logits = logits
        if self.noise_std > 0:
            routing_logits = logits + self._rng.normal(
                0.0, self.noise_std, logits.shape
            )
        n = x.shape[0]
        order = np.argsort(-routing_logits, axis=1, kind="stable")
        indices = order[:, : self.top_k]
        rows = np.arange(n)[:, None]
        selected = logits[rows, indices]
        weights = softmax(selected, axis=1)

        full_probs = softmax(logits, axis=1)
        top1 = indices[:, 0]
        top1_counts = np.bincount(top1, minlength=self.num_experts)
        expert_counts = np.bincount(
            indices.reshape(-1), minlength=self.num_experts
        )
        f = top1_counts / max(n, 1)
        mean_probs = full_probs.mean(axis=0)
        balance_loss = float(self.num_experts * (f * mean_probs).sum())
        self.last_stats = GateStats(
            expert_counts=expert_counts,
            top1_counts=top1_counts,
            balance_loss=balance_loss,
            mean_probs=mean_probs,
        )
        self._cache = (x, full_probs, weights, indices, f)
        return weights, indices

    def backward(self, grad_weights: np.ndarray) -> np.ndarray:
        """Backpropagate through routing.

        Args:
            grad_weights: ``dL/d(combine weights)`` of shape ``(N, top_k)``.

        Returns:
            ``dL/dx`` of shape ``(N, d_model)``. The gate weight gradient —
            including the balance-loss term — is accumulated in place.
        """
        self._require_cache(self._cache, "TopKGate")
        x, full_probs, weights, indices, f = self._cache
        n = x.shape[0]
        rows = np.arange(n)[:, None]

        # Task-loss path: softmax over the selected logits.
        inner = (grad_weights * weights).sum(axis=1, keepdims=True)
        grad_selected = weights * (grad_weights - inner)
        grad_logits = np.zeros((n, self.num_experts))
        np.add.at(grad_logits, (rows, indices), grad_selected)

        # Balance-loss path: aux = E * sum_e f_e * mean_n softmax(logits)_e.
        if self.balance_coef > 0:
            coeff = self.balance_coef * self.num_experts / n
            # d aux / d logits = coeff * J_softmax^T f  per token.
            dot = full_probs @ f
            grad_logits += coeff * full_probs * (f[None, :] - dot[:, None])

        self.w_gate.grad += x.T @ grad_logits
        return grad_logits @ self.w_gate.data.T
