"""Loss functions and quality metrics for the NumPy training stack."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.model.layers import softmax


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. the logits.

    Args:
        logits: ``(N, C)`` unnormalized scores.
        targets: ``(N,)`` integer class labels.

    Returns:
        ``(loss, grad_logits)`` where ``grad_logits`` has shape ``(N, C)``.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ModelError("logits must be (N, C)")
    if targets.shape != (logits.shape[0],):
        raise ModelError("targets must be (N,) matching logits")
    if targets.min(initial=0) < 0 or targets.max(initial=0) >= logits.shape[1]:
        raise ModelError("target label out of range")
    n = logits.shape[0]
    probs = softmax(logits, axis=1)
    nll = -np.log(np.maximum(probs[np.arange(n), targets], 1e-12))
    grad = probs.copy()
    grad[np.arange(n), targets] -= 1.0
    return float(nll.mean()), grad / n


def perplexity_from_loss(mean_nll: float) -> float:
    """Perplexity of a mean negative log-likelihood (nats)."""
    if mean_nll < 0:
        raise ModelError("mean NLL must be >= 0")
    return float(np.exp(mean_nll))


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray, k: int) -> float:
    """Fraction of rows whose target is among the top-``k`` logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if not 1 <= k <= logits.shape[1]:
        raise ModelError(f"k must be in [1, {logits.shape[1]}]")
    top = np.argsort(-logits, axis=1, kind="stable")[:, :k]
    return float((top == targets[:, None]).any(axis=1).mean())
