"""Multi-head self-attention with manual backpropagation (Eq. 1).

Implements ``Attention(Q, K, V) = softmax(QK^T / sqrt(d)) V`` with separate
Q/K/V/output projections. Supports an optional causal mask for the GPT-style
language-modelling head.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.model.layers import Linear, Module, softmax


class MultiHeadSelfAttention(Module):
    """Multi-head scaled-dot-product self-attention.

    Args:
        d_model: Model width (input and output feature size).
        num_heads: Attention heads; must divide ``d_model``.
        rng: Initializer RNG.
        causal: Apply a lower-triangular mask (GPT-style).
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        rng: np.random.Generator,
        causal: bool = False,
    ) -> None:
        if d_model % num_heads != 0:
            raise ModelError(
                f"d_model ({d_model}) must be divisible by num_heads "
                f"({num_heads})"
            )
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.causal = causal
        self.q_proj = Linear(d_model, d_model, rng, "attn.q")
        self.k_proj = Linear(d_model, d_model, rng, "attn.k")
        self.v_proj = Linear(d_model, d_model, rng, "attn.v")
        self.out_proj = Linear(d_model, d_model, rng, "attn.out")
        self._cache: tuple | None = None

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, T, D) -> (B, H, T, d_head)"""
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(B, H, T, d_head) -> (B, T, D)"""
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[-1] != self.d_model:
            raise ModelError(
                f"expected input (B, T, {self.d_model}), got {x.shape}"
            )
        q = self._split_heads(self.q_proj.forward(x))
        k = self._split_heads(self.k_proj.forward(x))
        v = self._split_heads(self.v_proj.forward(x))
        scale = 1.0 / np.sqrt(self.d_head)
        scores = np.einsum("bhid,bhjd->bhij", q, k) * scale
        if self.causal:
            t = x.shape[1]
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
            scores = np.where(mask, -1e30, scores)
        weights = softmax(scores, axis=-1)
        attended = np.einsum("bhij,bhjd->bhid", weights, v)
        self._cache = (q, k, v, weights, scale)
        return self.out_proj.forward(self._merge_heads(attended))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self._require_cache(self._cache, "MultiHeadSelfAttention")
        q, k, v, weights, scale = self._cache
        grad_attended = self._split_heads(self.out_proj.backward(grad))
        grad_weights = np.einsum("bhid,bhjd->bhij", grad_attended, v)
        grad_v = np.einsum("bhij,bhid->bhjd", weights, grad_attended)
        # Softmax backward: dL/ds = w * (dL/dw - sum_j dL/dw_j * w_j)
        inner = (grad_weights * weights).sum(axis=-1, keepdims=True)
        grad_scores = weights * (grad_weights - inner)
        grad_q = np.einsum("bhij,bhjd->bhid", grad_scores, k) * scale
        grad_k = np.einsum("bhij,bhid->bhjd", grad_scores, q) * scale
        grad_x = self.q_proj.backward(self._merge_heads(grad_q))
        grad_x = grad_x + self.k_proj.backward(self._merge_heads(grad_k))
        grad_x = grad_x + self.v_proj.backward(self._merge_heads(grad_v))
        return grad_x
