"""Exception hierarchy for the FlexMoE reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class TopologyError(ReproError):
    """A cluster topology constraint was violated (unknown device, etc.)."""


class PlacementError(ReproError):
    """An expert-to-device mapping invariant was violated."""


class RoutingError(ReproError):
    """Token routing failed to satisfy conservation or capacity limits."""


class SchedulingError(ReproError):
    """The scheduler or policy maker produced an inconsistent plan."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ModelError(ReproError):
    """A neural-network module was misused (shape mismatch, missing cache)."""


class ProfilingError(ReproError):
    """Profiling data was missing or inconsistent for a cost-model query."""


class ElasticityError(ReproError):
    """The elastic cluster runtime hit an unrecoverable condition.

    Raised when an elasticity event cannot be absorbed: an expert loses
    every replica to a device failure (its model states are gone), the
    last live device fails, or an event stream is inconsistent.
    """
