"""DeepSpeed-style expert parallelism with capacity-based token dropping.

The GShard/DeepSpeed lineage the paper compares against (Section 5.1):
experts are striped one-deep over GPUs; each expert enforces a capacity of
``capacity_factor * tokens / num_experts`` per step; tokens beyond capacity
are dropped (skipped via the residual connection). Dropping keeps the
heaviest expert's cost bounded — the smallest iteration time in the paper's
Figure 5 — but costs model quality, captured by token efficiency < 1.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MoESystem, StepResult, SystemContext
from repro.core.placement import Placement
from repro.core.router import FlexibleTokenRouter
from repro.exceptions import SimulationError


def apply_capacity(
    assignment: np.ndarray, capacity: int
) -> tuple[np.ndarray, int]:
    """Cap each expert's tokens at ``capacity``, dropping overflow.

    Overflow is removed proportionally across source GPUs (largest-remainder
    rounding), matching the per-rank capacity enforcement of real systems.

    Returns:
        ``(capped_assignment, dropped_tokens)``.
    """
    if capacity < 0:
        raise SimulationError("capacity must be >= 0")
    assignment = np.asarray(assignment).astype(np.int64, copy=True)
    dropped = 0
    for expert in range(assignment.shape[0]):
        row = assignment[expert]
        total = int(row.sum())
        overflow = total - capacity
        if overflow <= 0:
            continue
        exact = overflow * row / total
        cut = np.floor(exact).astype(np.int64)
        leftover = overflow - int(cut.sum())
        order = np.argsort(-(exact - cut), kind="stable")
        for idx in order:
            if leftover == 0:
                break
            if row[idx] - cut[idx] > 0:
                cut[idx] += 1
                leftover -= 1
        assignment[expert] = row - cut
        dropped += overflow
    return assignment, dropped


#: Sentinel distinguishing "not given" from an explicit ``None``.
_FROM_MODEL = object()


class ExpertParallelSystem(MoESystem):
    """Static expert parallelism + expert capacity (the DeepSpeed baseline).

    Args:
        context: Shared substrate.
        capacity_factor: Multiplier on the fair per-expert share defining
            the capacity; ``None`` disables dropping (pure GShard EP).
            Defaults to the model config's ``capacity_factor``.
    """

    name = "DeepSpeed"

    def __init__(
        self,
        context: SystemContext,
        capacity_factor: float | None = _FROM_MODEL,  # type: ignore[assignment]
    ) -> None:
        super().__init__(context)
        if capacity_factor is _FROM_MODEL:
            capacity_factor = context.model.capacity_factor
        self._capacity_factor = capacity_factor
        self._placement = Placement.expert_parallel(
            context.model.num_experts, context.topology.num_gpus
        )
        self._router = FlexibleTokenRouter()

    @property
    def placement(self) -> Placement:
        return self._placement

    def reset(self) -> None:
        self._placement = Placement.expert_parallel(
            self._ctx.model.num_experts, self._ctx.topology.num_gpus
        )

    def step(self, assignment: np.ndarray, step_index: int) -> StepResult:
        assignment = self._check_assignment(assignment)
        assigned = int(assignment.sum())
        if self._capacity_factor is not None:
            capacity = int(
                np.ceil(
                    self._capacity_factor
                    * assigned
                    / self._ctx.model.num_experts
                )
            )
            capped, dropped = apply_capacity(assignment, capacity)
        else:
            capped, dropped = assignment, 0
        plan = self._router.route(capped, self._placement)
        timing = self._ctx.executor.execute(plan.routes, self._placement)
        return StepResult(
            timing=timing,
            assigned_tokens=assigned,
            processed_tokens=assigned - dropped,
            dropped_tokens=dropped,
            gpu_loads=plan.gpu_loads,
        )
