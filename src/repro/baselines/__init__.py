"""MoE training systems: FlexMoE and the baselines it is evaluated against.

Every system implements the :class:`~repro.baselines.base.MoESystem`
interface — consume one step's gate assignment, decide placement/token
handling, execute, and report efficiency — so the training loop and the
benchmarks can swap them freely.

* :class:`ExpertParallelSystem` — DeepSpeed-style static expert parallelism
  with capacity-based token dropping (GShard lineage).
* :class:`FasterMoESystem` — dynamic *shadowing*: the hottest experts are
  replicated onto **all** GPUs each step (coarse-grained: one GPU or every
  GPU), with broadcast + full-group sync overheads and no token dropping.
* :class:`SwipeSystem` — BaGuaLu's SWIPE: the gate's decisions are rewritten
  to enforce strict balance, trading token fidelity for perfect load spread.
* :class:`FlexMoESystem` — the paper's system: fine-grained replicated
  expert parallelism driven by the Scheduler/Policy Maker.
"""

from repro.baselines.base import MoESystem, StepResult, SystemContext, build_context
from repro.baselines.expert_parallel import ExpertParallelSystem
from repro.baselines.fastermoe import FasterMoESystem
from repro.baselines.flexmoe import FlexMoESystem
from repro.baselines.swipe import SwipeSystem

__all__ = [
    "ExpertParallelSystem",
    "FasterMoESystem",
    "FlexMoESystem",
    "MoESystem",
    "StepResult",
    "SwipeSystem",
    "SystemContext",
    "build_context",
]
