"""Common interface for MoE training systems.

A *system* owns a placement policy and a token-handling policy. Per step it
receives the gate's raw assignment ``I`` (tokens per expert per source GPU),
decides what actually executes, and reports a :class:`StepResult` with both
timing and the two efficiency metrics of the paper's Figure 7a:

* **token efficiency** — fraction of assigned tokens processed by the
  expert the gate chose for them (drops and diversions count against it);
* **expert efficiency** — how evenly the useful computation spread over
  GPUs (``mean load / max load``), i.e. the meaningful-computation share of
  the straggler-synchronized step.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.collectives import CollectiveCostModel
from repro.cluster.events import ClusterState
from repro.cluster.groups import CommunicatorGroupCache
from repro.cluster.profiler import ClusterProfile, Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, MoEModelConfig
from repro.core.balance import balance_ratio
from repro.runtime.executor import StepExecutor, StepTiming
from repro.exceptions import SimulationError


@dataclass(frozen=True)
class SystemContext:
    """Shared substrate handed to every system.

    Attributes:
        topology: The simulated cluster.
        model: MoE architecture under training.
        profile: *Noisy* profiled figures — what scheduling decisions see.
        executor: Ground-truth step execution — what actually happens.
        collectives: Ground-truth communication timing.
        cluster_state: Live view of the device pool, shared between the
            executor and any elastic-aware consumer; ``None`` keeps the
            pool frozen at construction (the paper's setting).
    """

    topology: ClusterTopology
    model: MoEModelConfig
    profile: ClusterProfile
    executor: StepExecutor
    collectives: CollectiveCostModel
    cluster_state: ClusterState | None = None


def build_context(
    cluster: ClusterConfig,
    model: MoEModelConfig,
    seed: int = 0,
    profile_noise: float = 0.02,
    jitter: float = 0.02,
    group_cache_capacity: int = 64,
    cluster_state: ClusterState | None = None,
    inference: bool = False,
) -> SystemContext:
    """Construct the full substrate for one experiment.

    ``inference=True`` builds the executor in inference mode (forward-only
    steps, no gradient sync) for the online serving engine.
    """
    topology = ClusterTopology(cluster)
    profile = Profiler(topology, noise=profile_noise, seed=seed).profile(model)
    cache = CommunicatorGroupCache(capacity=group_cache_capacity)
    executor = StepExecutor(
        topology,
        model,
        jitter=jitter,
        seed=seed + 1,
        group_cache=cache,
        cluster_state=cluster_state,
        inference=inference,
    )
    return SystemContext(
        topology=topology,
        model=model,
        profile=profile,
        executor=executor,
        collectives=CollectiveCostModel(topology),
        cluster_state=cluster_state,
    )


@dataclass(frozen=True)
class StepResult:
    """Per-step outcome reported by every system.

    Attributes:
        timing: The executor's measured step timing.
        assigned_tokens: Tokens the gate wanted processed this step.
        processed_tokens: Tokens actually processed by their chosen expert.
        dropped_tokens: Tokens skipped entirely (capacity overflow).
        diverted_tokens: Tokens processed by a *different* expert than the
            gate chose (SWIPE-style reassignment).
        gpu_loads: Tokens computed per GPU.
        scheduling_actions: Placement primitives applied this step.
    """

    timing: StepTiming
    assigned_tokens: int
    processed_tokens: int
    dropped_tokens: int = 0
    diverted_tokens: int = 0
    gpu_loads: np.ndarray = field(default_factory=lambda: np.zeros(0))
    scheduling_actions: int = 0

    @property
    def step_time(self) -> float:
        return self.timing.step_time

    @property
    def token_efficiency(self) -> float:
        if self.assigned_tokens == 0:
            return 1.0
        return self.processed_tokens / self.assigned_tokens

    @property
    def expert_efficiency(self) -> float:
        """Mean-over-max GPU load: 1.0 means perfectly balanced compute."""
        if self.gpu_loads.size == 0 or self.gpu_loads.max() == 0:
            return 1.0
        return float(self.gpu_loads.mean() / self.gpu_loads.max())

    @property
    def balance(self) -> float:
        if self.gpu_loads.size == 0:
            return 1.0
        return balance_ratio(self.gpu_loads)

    @property
    def utilization(self) -> float:
        return self.timing.compute_utilization


class MoESystem(abc.ABC):
    """Abstract MoE training system."""

    #: Human-readable system name used in reports.
    name: str = "abstract"

    def __init__(self, context: SystemContext) -> None:
        self._ctx = context

    @property
    def context(self) -> SystemContext:
        return self._ctx

    @abc.abstractmethod
    def step(self, assignment: np.ndarray, step_index: int) -> StepResult:
        """Process one training step's gate assignment."""

    def reset(self) -> None:
        """Return the system to its initial placement/state."""

    def _check_assignment(self, assignment: np.ndarray) -> np.ndarray:
        assignment = np.asarray(assignment)
        if assignment.ndim != 2:
            raise SimulationError("assignment must be (experts, gpus)")
        if assignment.shape[0] != self._ctx.model.num_experts:
            raise SimulationError(
                f"assignment has {assignment.shape[0]} experts, model has "
                f"{self._ctx.model.num_experts}"
            )
        if assignment.shape[1] != self._ctx.topology.num_gpus:
            raise SimulationError(
                f"assignment has {assignment.shape[1]} gpus, cluster has "
                f"{self._ctx.topology.num_gpus}"
            )
        return assignment
