"""FlexMoE: the full system, wiring the core components together.

Per step:

1. (optional) the gate flow-controller admits the assignment, deferring
   transient spikes the placement cannot absorb yet;
2. the Scheduler (Algorithm 1) monitors the balance ratio on the *target*
   placement and emits beneficial Expand/Shrink pairs plus background
   Migrates;
3. emitted actions enter the best-effort adjustment pipeline: their
   parameter transfers and communicator-group creations ride a separate
   stream whose bandwidth budget is the training step itself, and the
   *active* placement only commits them once that work is paid for
   (Section 4, "Best-Effort Adjustment") — training never blocks;
4. the flexible token router (Algorithm 3) spreads tokens over the active
   placement's replicas — locality first, then proportional to available
   capacity;
5. the step executes on the ground-truth executor.

With ``best_effort=False`` (Figure 6b-style ablation) actions instead apply
immediately and their full transfer time blocks the step.

FlexMoE never drops or diverts tokens: token efficiency is 100% by
construction, the property behind its model-quality win (Table 2).
"""

from __future__ import annotations

import dataclasses
from collections import deque

import numpy as np

from repro.baselines.base import MoESystem, StepResult, SystemContext
from repro.config import SchedulerConfig
from repro.core.cost_model import MoECostModel
from repro.core.flow_control import GateFlowController
from repro.core.placement import Placement
from repro.core.policy import PolicyMaker
from repro.core.primitives import PlacementAction
from repro.core.router import FlexibleTokenRouter
from repro.core.scheduler import Scheduler
from repro.runtime.adjustment import AdjustmentQueue


class FlexMoESystem(MoESystem):
    """Dynamic fine-grained replicated expert parallelism (the paper).

    Args:
        context: Shared substrate.
        scheduler_config: Scheduler knobs; defaults to the paper's dynamic
            max-ratio trigger.
        flow_control: Optional gate flow-controller. ``None`` (default)
            disables deferral, matching the paper's main experiments.
    """

    name = "FlexMoE"

    def __init__(
        self,
        context: SystemContext,
        scheduler_config: SchedulerConfig | None = None,
        flow_control: GateFlowController | None = None,
    ) -> None:
        super().__init__(context)
        self._scheduler_config = scheduler_config or SchedulerConfig()
        self._flow_control = flow_control
        self._router = FlexibleTokenRouter()
        self._cost_model = MoECostModel(context.profile, context.model)
        # The adjustment stream overlaps the *whole model's* training step,
        # of which the simulated MoE layer is one slice: the stream budget
        # per simulated step is scaled by the number of MoE layers.
        self._overlap_factor = max(1, context.model.num_layers // 2)
        self._build()

    def _build(self) -> None:
        ctx = self._ctx
        # Every expert needs one vExpert; auto-sizing doubles that minimum
        # so replication headroom always exists (the paper's setups do the
        # same). Explicit slot counts are respected as configured.
        min_slots = -(-ctx.model.num_experts // ctx.topology.num_gpus)
        if self._scheduler_config.slots_per_gpu is None:
            self._scheduler_config = self._scheduler_config.replace(
                slots_per_gpu=max(4, 2 * min_slots)
            )
        # Target placement: what the scheduler plans toward. Active
        # placement: what routing/execution actually use; commits lag by the
        # best-effort stream's budget.
        self._target = Placement.balanced(
            ctx.model.num_experts,
            ctx.topology.num_gpus,
            self._scheduler_config.slots_per_gpu,
        )
        self._active = self._target.copy()
        policy = PolicyMaker(self._cost_model)
        self._scheduler = Scheduler(
            self._target, policy, self._scheduler_config, ctx.topology
        )
        self._queue = AdjustmentQueue(ctx.model, ctx.collectives)
        # Each entry: [remaining_stream_seconds, actions_tuple]
        self._pending: deque[list] = deque()
        self._committed_actions = 0

    def reset(self) -> None:
        self._build()
        if self._flow_control is not None:
            self._flow_control = GateFlowController()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def placement(self) -> Placement:
        """The active placement (what routing currently uses)."""
        return self._active

    @property
    def target_placement(self) -> Placement:
        """The scheduler's goal placement (active + pending actions)."""
        return self._target

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def adjustment_queue(self) -> AdjustmentQueue:
        return self._queue

    @property
    def pending_adjustments(self) -> int:
        """Actions emitted but not yet committed to the active placement."""
        return sum(len(entry[1]) for entry in self._pending)

    # ------------------------------------------------------------------
    # Best-effort pipeline
    # ------------------------------------------------------------------
    def _stream_work_seconds(self, actions: tuple[PlacementAction, ...]) -> float:
        """Background seconds needed before ``actions`` can commit:
        parameter/optimizer transfers plus new communicator creations."""
        self._queue.enqueue(actions)
        report = self._queue.drain(overlap_window=0.0, best_effort=True)
        creation = self._group_creation_cost()
        return report.transfer_time + creation

    def _group_creation_cost(self) -> float:
        """Seconds to create communicators for new replica groups.

        Creations are independent handshakes issued from the background
        thread pool, so concurrent creations cost the slowest one, not the
        sum.
        """
        cache = self._ctx.executor.group_cache
        if cache is None:
            return 0.0
        cost = 0.0
        for group in self._target.replica_groups().values():
            if len(group) > 1:
                cost = max(cost, cache.acquire(group))
        return cost

    def _advance_stream(self, budget: float) -> int:
        """Spend ``budget`` seconds of stream bandwidth; commit ready actions."""
        committed = 0
        while self._pending and budget > 0:
            entry = self._pending[0]
            if entry[0] > budget:
                entry[0] -= budget
                budget = 0.0
                break
            budget -= entry[0]
            for action in entry[1]:
                action.apply(self._active)
            committed += len(entry[1])
            self._pending.popleft()
        self._committed_actions += committed
        return committed

    # ------------------------------------------------------------------
    # Step
    # ------------------------------------------------------------------
    def step(self, assignment: np.ndarray, step_index: int) -> StepResult:
        assignment = self._check_assignment(assignment)
        assigned = int(assignment.sum())
        if self._flow_control is not None:
            admitted = self._flow_control.admit(assignment, self._active)
        else:
            admitted = assignment

        outcome = self._scheduler.on_step(admitted, step_index)
        blocking = 0.0
        if outcome.actions:
            work = self._stream_work_seconds(outcome.actions)
            if self._scheduler_config.best_effort:
                self._pending.append([work, outcome.actions])
            else:
                for action in outcome.actions:
                    action.apply(self._active)
                self._committed_actions += len(outcome.actions)
                blocking = work

        plan = self._router.route(admitted, self._active)
        timing = self._ctx.executor.execute(plan.routes, self._active)
        if blocking > 0:
            timing = dataclasses.replace(timing, adjustment_blocking=blocking)
        committed = self._advance_stream(
            timing.step_time * self._overlap_factor
        )
        return StepResult(
            timing=timing,
            assigned_tokens=assigned,
            processed_tokens=int(admitted.sum()),
            gpu_loads=plan.gpu_loads,
            scheduling_actions=committed if self._scheduler_config.best_effort
            else len(outcome.actions),
        )
