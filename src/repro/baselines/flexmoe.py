"""FlexMoE: the full system, wiring the core components together.

Per step:

1. (optional) the gate flow-controller admits the assignment, deferring
   transient spikes the placement cannot absorb yet;
2. the Scheduler (Algorithm 1) monitors the balance ratio on the *target*
   placement and emits beneficial Expand/Shrink pairs plus background
   Migrates;
3. emitted actions enter the best-effort adjustment pipeline: their
   parameter transfers and communicator-group creations ride a separate
   stream whose bandwidth budget is the training step itself, and the
   *active* placement only commits them once that work is paid for
   (Section 4, "Best-Effort Adjustment") — training never blocks;
4. the flexible token router (Algorithm 3) spreads tokens over the active
   placement's replicas — locality first, then proportional to available
   capacity;
5. the step executes on the ground-truth executor.

With ``best_effort=False`` (Figure 6b-style ablation) actions instead apply
immediately and their full transfer time blocks the step.

FlexMoE never drops or diverts tokens: token efficiency is 100% by
construction, the property behind its model-quality win (Table 2).

The per-layer mechanics (scheduler state, best-effort stream, routing) live
in :class:`~repro.runtime.pipeline.LayerPipeline`; this class wraps ONE of
them in the :class:`~repro.baselines.base.MoESystem` interface. The
multi-layer engine (:class:`~repro.runtime.pipeline.MultiLayerFlexMoEEngine`)
runs one pipeline per MoE layer of the transformer.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.base import MoESystem, StepResult, SystemContext
from repro.config import SchedulerConfig
from repro.core.flow_control import GateFlowController
from repro.core.placement import Placement
from repro.core.scheduler import Scheduler
from repro.runtime.adjustment import AdjustmentQueue
from repro.runtime.pipeline import LayerPipeline


class FlexMoESystem(MoESystem):
    """Dynamic fine-grained replicated expert parallelism (the paper).

    Args:
        context: Shared substrate.
        scheduler_config: Scheduler knobs; defaults to the paper's dynamic
            max-ratio trigger.
        flow_control: Optional gate flow-controller. ``None`` (default)
            disables deferral, matching the paper's main experiments.
    """

    name = "FlexMoE"

    def __init__(
        self,
        context: SystemContext,
        scheduler_config: SchedulerConfig | None = None,
        flow_control: GateFlowController | None = None,
    ) -> None:
        super().__init__(context)
        self._scheduler_config = scheduler_config or SchedulerConfig()
        self._flow_control = flow_control
        # The adjustment stream overlaps the *whole model's* training step,
        # of which the simulated MoE layer is one slice: the stream budget
        # per simulated step is scaled by the number of MoE layers.
        self._overlap_factor = context.model.num_moe_layers
        self._build()

    def _build(self) -> None:
        ctx = self._ctx
        self._layer = LayerPipeline(
            model=ctx.model,
            topology=ctx.topology,
            profile=ctx.profile,
            collectives=ctx.collectives,
            scheduler_config=self._scheduler_config,
            group_cache=ctx.executor.group_cache,
        )
        self._scheduler_config = self._layer.config

    def reset(self) -> None:
        # Communicator warmth gates when pending adjustments commit (a
        # cached group's creation is free), so a warm cache would make a
        # replayed run adjust earlier than the original. Restore the
        # cold-start condition along with the placement state.
        cache = self._ctx.executor.group_cache
        if cache is not None:
            cache.clear()
        self._build()
        if self._flow_control is not None:
            self._flow_control = GateFlowController()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def placement(self) -> Placement:
        """The active placement (what routing currently uses)."""
        return self._layer.active_placement

    @property
    def target_placement(self) -> Placement:
        """The scheduler's goal placement (active + pending actions)."""
        return self._layer.target_placement

    @property
    def scheduler(self) -> Scheduler:
        return self._layer.scheduler

    @property
    def adjustment_queue(self) -> AdjustmentQueue:
        return self._layer.adjustment_queue

    @property
    def pending_adjustments(self) -> int:
        """Actions emitted but not yet committed to the active placement."""
        return self._layer.pending_actions

    # ------------------------------------------------------------------
    # Step
    # ------------------------------------------------------------------
    def step(self, assignment: np.ndarray, step_index: int) -> StepResult:
        assignment = self._check_assignment(assignment)
        assigned = int(assignment.sum())
        if self._flow_control is not None:
            admitted = self._flow_control.admit(assignment, self.placement)
        else:
            admitted = assignment

        blocking, outcome = self._layer.begin_step(admitted, step_index)
        plan = self._layer.route(admitted)
        timing = self._ctx.executor.execute(plan.routes, self.placement)
        if blocking > 0:
            timing = dataclasses.replace(timing, adjustment_blocking=blocking)
        committed = self._layer.advance_stream(
            timing.step_time * self._overlap_factor
        )
        return StepResult(
            timing=timing,
            assigned_tokens=assigned,
            processed_tokens=int(admitted.sum()),
            gpu_loads=plan.gpu_loads,
            scheduling_actions=committed if self._scheduler_config.best_effort
            else len(outcome.actions),
        )
