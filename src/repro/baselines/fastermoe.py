"""FasterMoE's dynamic shadowing baseline.

FasterMoE (He et al., PPoPP'22) "proposed the shadowing strategy to
replicate the popular expert among all GPUs" (Section 5.1). Shadowing is
coarse-grained — an expert lives on **one** GPU or on **every** GPU — which
the paper identifies as its weakness: replicas must broadcast parameters
and synchronize gradients across the whole cluster, so it "falls back to a
sub-optimal solution" and "suffers from the global synchronization of
expert replicas" as GPU counts grow.

Each step the system greedily shadows the hottest experts while its cost
model says the straggler-time saved exceeds the broadcast + global-sync
overhead. No tokens are dropped (token efficiency is always 100%).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.baselines.base import MoESystem, StepResult, SystemContext
from repro.core.cost_model import MoECostModel
from repro.core.placement import Placement
from repro.core.router import FlexibleTokenRouter


class FasterMoESystem(MoESystem):
    """Expert parallelism + per-step all-GPU shadowing of hot experts.

    Args:
        context: Shared substrate.
        max_shadowed: Upper bound on experts shadowed per step.
    """

    name = "FasterMoE"

    def __init__(self, context: SystemContext, max_shadowed: int = 8) -> None:
        super().__init__(context)
        self._max_shadowed = max_shadowed
        self._router = FlexibleTokenRouter()
        self._cost_model = MoECostModel(context.profile, context.model)
        self._base_counts = Placement.expert_parallel(
            context.model.num_experts, context.topology.num_gpus
        ).counts

    # ------------------------------------------------------------------
    # Shadow selection
    # ------------------------------------------------------------------
    def _placement_with_shadows(self, shadowed: set[int]) -> Placement:
        counts = self._base_counts.copy()
        for expert in shadowed:
            counts[expert, :] = 1
        slots = int(counts.sum(axis=0).max())
        return Placement(counts, slots)

    def _broadcast_estimate(self, num_shadowed: int) -> float:
        """Modelled per-step cost of broadcasting shadowed parameters."""
        if num_shadowed == 0:
            return 0.0
        all_gpus = list(range(self._ctx.topology.num_gpus))
        one = self._ctx.collectives.broadcast_time(
            self._ctx.model.expert_bytes, root=0, group=all_gpus
        )
        return num_shadowed * one

    def select_shadows(self, assignment: np.ndarray) -> set[int]:
        """Greedy shadow set: add hottest experts while modelled time improves."""
        loads = assignment.sum(axis=1)
        order = np.argsort(-loads, kind="stable")
        shadowed: set[int] = set()
        placement = self._placement_with_shadows(shadowed)
        routes = self._router.route_fractional(assignment, placement)
        best_time = self._cost_model.step_time(routes, placement)
        for expert in order[: self._max_shadowed * 2]:
            candidate = shadowed | {int(expert)}
            placement = self._placement_with_shadows(candidate)
            routes = self._router.route_fractional(assignment, placement)
            time = self._cost_model.step_time(
                routes, placement
            ) + self._broadcast_estimate(len(candidate))
            if time < best_time:
                best_time = time
                shadowed = candidate
                if len(shadowed) >= self._max_shadowed:
                    break
            else:
                break  # loads are sorted: colder experts help even less
        return shadowed

    # ------------------------------------------------------------------
    # Step
    # ------------------------------------------------------------------
    def step(self, assignment: np.ndarray, step_index: int) -> StepResult:
        assignment = self._check_assignment(assignment)
        assigned = int(assignment.sum())
        shadowed = self.select_shadows(assignment)
        placement = self._placement_with_shadows(shadowed)
        plan = self._router.route(assignment, placement)
        timing = self._ctx.executor.execute(plan.routes, placement)
        # FasterMoE prefetches shadow parameters while the previous layers
        # compute; only the broadcast time exceeding the step blocks it.
        broadcast = self._real_broadcast_time(len(shadowed))
        blocking = max(0.0, broadcast - timing.step_time)
        if blocking > 0:
            timing = dataclasses.replace(
                timing, adjustment_blocking=blocking
            )
        return StepResult(
            timing=timing,
            assigned_tokens=assigned,
            processed_tokens=assigned,
            gpu_loads=plan.gpu_loads,
            scheduling_actions=len(shadowed),
        )

    def _real_broadcast_time(self, num_shadowed: int) -> float:
        if num_shadowed == 0:
            return 0.0
        all_gpus = list(range(self._ctx.topology.num_gpus))
        one = self._ctx.collectives.broadcast_time(
            self._ctx.model.expert_bytes, root=0, group=all_gpus
        )
        return num_shadowed * one
