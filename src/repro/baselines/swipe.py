"""SWIPE (BaGuaLu): strict balance by rewriting the gate's decisions.

SWIPE "improves expert efficiency by modifying the gating algorithm to
re-assign inputs to other experts for strict load balance. However, this
approach changes the relations between tokens and experts, thus leads to
low token efficiency" (Section 5.4).

Implementation: every step, each expert's demand above the fair share is
diverted to the most underloaded experts until all experts carry exactly
the fair share (+-1 token of rounding). Diverted tokens still execute —
expert efficiency is perfect — but they were processed by the *wrong*
expert, so they count against token efficiency.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MoESystem, StepResult, SystemContext
from repro.core.placement import Placement
from repro.core.router import FlexibleTokenRouter


def rebalance_strict(assignment: np.ndarray) -> tuple[np.ndarray, int]:
    """Divert overflow tokens to underloaded experts for exact balance.

    Returns:
        ``(balanced_assignment, diverted_tokens)``. Column sums (tokens per
        source GPU) are preserved — tokens change *expert*, not origin.
    """
    assignment = np.asarray(assignment).astype(np.int64, copy=True)
    num_experts, num_gpus = assignment.shape
    totals = assignment.sum(axis=1)
    grand_total = int(totals.sum())
    base, extra = divmod(grand_total, num_experts)
    targets = np.full(num_experts, base, dtype=np.int64)
    # Give the +1 remainder slots to the currently heaviest experts so the
    # fewest tokens move.
    for expert in np.argsort(-totals, kind="stable")[:extra]:
        targets[expert] += 1

    surplus = totals - targets
    diverted = int(np.maximum(surplus, 0).sum())
    givers = [int(e) for e in np.flatnonzero(surplus > 0)]
    takers = [int(e) for e in np.flatnonzero(surplus < 0)]
    for giver in givers:
        need_to_give = int(surplus[giver])
        # Remove proportionally across this expert's source GPUs.
        row = assignment[giver]
        while need_to_give > 0 and takers:
            taker = takers[0]
            can_take = int(-surplus[taker])
            moved = min(need_to_give, can_take)
            _move_tokens(assignment, giver, taker, moved)
            surplus[giver] -= moved
            surplus[taker] += moved
            need_to_give -= moved
            if surplus[taker] == 0:
                takers.pop(0)
    return assignment, diverted


def _move_tokens(assignment: np.ndarray, giver: int, taker: int, count: int) -> None:
    """Move ``count`` tokens from ``giver``'s row to ``taker``'s, preserving
    per-GPU origin counts (largest sources give first)."""
    remaining = count
    order = np.argsort(-assignment[giver], kind="stable")
    for gpu in order:
        if remaining == 0:
            break
        take = min(int(assignment[giver, gpu]), remaining)
        assignment[giver, gpu] -= take
        assignment[taker, gpu] += take
        remaining -= take


class SwipeSystem(MoESystem):
    """Strict-balance gating over static expert parallelism."""

    name = "SWIPE"

    def __init__(self, context: SystemContext) -> None:
        super().__init__(context)
        self._placement = Placement.expert_parallel(
            context.model.num_experts, context.topology.num_gpus
        )
        self._router = FlexibleTokenRouter()

    @property
    def placement(self) -> Placement:
        return self._placement

    def step(self, assignment: np.ndarray, step_index: int) -> StepResult:
        assignment = self._check_assignment(assignment)
        assigned = int(assignment.sum())
        balanced, diverted = rebalance_strict(assignment)
        plan = self._router.route(balanced, self._placement)
        timing = self._ctx.executor.execute(plan.routes, self._placement)
        return StepResult(
            timing=timing,
            assigned_tokens=assigned,
            processed_tokens=assigned - diverted,
            diverted_tokens=diverted,
            gpu_loads=plan.gpu_loads,
        )
