"""Figure 7a: token efficiency vs expert efficiency trajectories.

The paper places each training method on the (token efficiency, expert
efficiency) plane, ideal = (100%, 100%):

* DeepSpeed — drops tokens beyond capacity: low on both axes;
* SWIPE — rewrites the gate for strict balance: 100% expert efficiency,
  low token efficiency;
* FasterMoE — no dropping: 100% token efficiency, mediocre expert
  efficiency;
* FlexMoE — 100% token efficiency and near-ideal expert efficiency.

All methods drift toward the ideal corner as the balance loss gradually
evens out routing; the skew-annealed workload models that.
"""

from conftest import run_once

from repro.bench.harness import FIGURE7_SYSTEMS, ExperimentScale, cluster_for
from repro.bench.reporting import format_series, format_table
from repro.model.zoo import get_model_config
from repro.training.loop import compare_systems

SCALE = ExperimentScale(num_steps=60, warmup=5)


def run_fig7a():
    model = get_model_config("GPT-MoE-L")
    workload = SCALE.workload(seed=9, skew=1.3, final_skew=0.5)
    cmp = compare_systems(
        model,
        cluster_for(64),
        workload,
        systems=FIGURE7_SYSTEMS,
        warmup=SCALE.warmup,
        seed=9,
    )
    rows = []
    endpoints = {}
    series = []
    for name in cmp.systems:
        trajectory = cmp[name].trajectory
        tok, exp = trajectory.endpoint(window=8)
        start = (
            float(trajectory.token_efficiency[:8].mean()),
            float(trajectory.expert_efficiency[:8].mean()),
        )
        endpoints[name] = (tok, exp, trajectory.distance_to_ideal(window=8))
        rows.append(
            [
                name,
                f"({start[0]:.2f}, {start[1]:.2f})",
                f"({tok:.2f}, {exp:.2f})",
                f"{endpoints[name][2]:.3f}",
            ]
        )
        steps = list(range(0, len(trajectory.token_efficiency), 10))
        series.append(
            format_series(
                f"{name} token-eff",
                steps,
                [round(float(trajectory.token_efficiency[s]), 3) for s in steps],
            )
        )
    table = format_table(
        ["system", "start (tok,exp)", "end (tok,exp)", "dist-to-ideal"],
        rows,
        title="Figure 7a: token vs expert efficiency (GPT-MoE-L, 64 GPUs)",
    )
    return table + "\n\n" + "\n".join(series), endpoints


def test_fig7a_efficiency_plane(benchmark, report):
    output, endpoints = run_once(benchmark, run_fig7a)
    report("fig7a_efficiency", output)
    tok = {name: endpoints[name][0] for name in endpoints}
    exp = {name: endpoints[name][1] for name in endpoints}
    dist = {name: endpoints[name][2] for name in endpoints}
    # Quadrant claims.
    assert tok["FlexMoE"] == 1.0 and tok["FasterMoE"] == 1.0
    assert exp["SWIPE"] > 0.99 and tok["SWIPE"] < 1.0
    assert tok["DeepSpeed"] < 1.0
    # FlexMoE is the closest non-gate-rewriting method to the ideal.
    assert dist["FlexMoE"] < dist["DeepSpeed"]
    assert dist["FlexMoE"] < dist["FasterMoE"]
