"""Figure 6b: dynamic vs static scheduling policies.

The paper triggers adjustment dynamically on the balance ratio, and
compares against static policies that adjust on a fixed interval (10, 50,
100 steps). Dynamic wins by up to 1.20x: small intervals pay adjustment
cost too often, large intervals react too slowly to routing fluctuation.
"""

from conftest import run_once

from repro.baselines import FlexMoESystem
from repro.bench.harness import cluster_for, ExperimentScale
from repro.bench.reporting import format_table
from repro.config import SchedulerConfig
from repro.model.zoo import get_model_config
from repro.training.loop import compare_systems

#: Longer trace than the default smoke scale so interval-100 differs from
#: interval-50 within the run.
SCALE = ExperimentScale(num_steps=60, warmup=10)

MODELS = (("BERT-MoE-L", 64), ("GPT-MoE-L", 64))
INTERVALS = (10, 50)


def run_fig6b():
    rows = []
    dynamic_vs_static = {}
    for model_name, num_gpus in MODELS:
        model = get_model_config(model_name)
        workload = SCALE.workload(seed=7, drift=0.08, renewal_period=30)
        times = {}
        configs = {"dynamic": SchedulerConfig(mode="dynamic")}
        for interval in INTERVALS:
            configs[f"static-{interval}"] = SchedulerConfig(
                mode="static", static_interval=interval
            )
        for label, config in configs.items():
            cmp = compare_systems(
                model,
                cluster_for(num_gpus),
                workload,
                systems=[lambda ctx, c=config: FlexMoESystem(ctx, c)],
                warmup=SCALE.warmup,
                seed=7,
            )
            times[label] = cmp["FlexMoE"].mean_step_time
        for label in configs:
            rows.append(
                [
                    model_name,
                    label,
                    f"{times[label] * 1e3:.2f}",
                    f"{times[label] / times['dynamic']:.2f}x",
                ]
            )
        worst_static = max(times[f"static-{i}"] for i in INTERVALS)
        dynamic_vs_static[model_name] = worst_static / times["dynamic"]
    table = format_table(
        ["model", "policy", "step(ms)", "vs dynamic"],
        rows,
        title="Figure 6b: scheduling policy ablation (paper: dynamic wins up to 1.20x)",
    )
    return table, dynamic_vs_static


def test_fig6b_policy_ablation(benchmark, report):
    table, ratios = run_once(benchmark, run_fig6b)
    report("fig6b_policies", table)
    # Dynamic should beat (or at worst match) the worst static interval.
    for model_name, ratio in ratios.items():
        assert ratio > 0.95, f"dynamic should not lose to static on {model_name}"
