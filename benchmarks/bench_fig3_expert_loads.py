"""Figure 3: skewness and smooth drift of expert loads.

Paper observations on GPT-MoE traces (64 experts):

* Figure 3a — the CDF of per-step expert loads: the top-10 experts receive
  ~75% of all tokens;
* Figure 3b — expert loads evolve smoothly and continuously over training
  (routing fluctuation without discontinuities).

We regenerate both statistics from the synthetic trace generator that
drives every simulation.
"""

import numpy as np
from conftest import run_once

from repro.bench.reporting import format_series, format_table
from repro.config import WorkloadConfig
from repro.workload.synthetic import (
    DriftingRoutingGenerator,
    expert_load_cdf,
)


def run_figure3():
    config = WorkloadConfig(
        tokens_per_step=1_048_576, num_steps=150, skew=1.3,
        drift=0.06, renewal_period=15, seed=11,
    )
    generator = DriftingRoutingGenerator(64, 64, config)
    trace = generator.generate()

    # --- 3a: CDF of a mid-training step ------------------------------
    loads = trace.expert_loads(60).astype(float)
    cdf = expert_load_cdf(loads)
    marks = [1, 5, 10, 20, 32, 64]
    cdf_series = format_series(
        "CDF(top-k experts)", marks, [round(float(cdf[k - 1]), 3) for k in marks]
    )

    # --- 3b: smoothness + fluctuation over the run -------------------
    shares = trace.expert_loads().astype(float)
    shares /= shares.sum(axis=1, keepdims=True)
    step_change = np.abs(np.diff(shares, axis=0)).sum(axis=1)
    # identity churn: how much the hot-10 set changes start -> end
    top10_start = set(np.argsort(-shares[:10].mean(axis=0))[:10])
    top10_end = set(np.argsort(-shares[-10:].mean(axis=0))[:10])
    churn = len(top10_start - top10_end)

    stats = format_table(
        ["statistic", "value", "paper"],
        [
            ["top-10/64 token share", f"{cdf[9]:.3f}", "~0.75"],
            ["max per-step share change", f"{step_change.max():.4f}", "small (smooth)"],
            ["mean per-step share change", f"{step_change.mean():.4f}", "small (smooth)"],
            ["hot-10 membership churn over run", churn, "> 0 (fluctuation)"],
        ],
        title="Figure 3: expert-load skewness and drift (GPT-MoE, 64 experts)",
    )
    return cdf_series, stats, cdf, step_change, churn


def test_figure3_skew_and_smoothness(benchmark, report):
    cdf_series, stats, cdf, step_change, churn = run_once(
        benchmark, run_figure3
    )
    report("fig3_expert_loads", stats + "\n\n" + cdf_series)
    # 3a: top-10 of 64 ~ 75% (paper's headline skew number).
    assert 0.65 <= cdf[9] <= 0.85
    # 3b: smooth (no step redistributes more than 25% of mass)...
    assert step_change.max() < 0.25
    # ...but not static: identity of hot experts drifts over the run.
    assert churn >= 1
