"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper. Besides the
pytest-benchmark timing, each writes its paper-style rows/series to
``benchmarks/results/<name>.txt`` (and stdout) so the reproduction can be
diffed against the published numbers; EXPERIMENTS.md embeds these outputs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir: Path, request: pytest.FixtureRequest):
    """Writer that persists a benchmark's findings and echoes them."""

    def write(name: str, content: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(content + "\n")
        print(f"\n[{name}]\n{content}\n")

    return write


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are end-to-end simulations (seconds to minutes); the
    default calibration loop would repeat them pointlessly.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
