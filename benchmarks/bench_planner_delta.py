"""Delta-cost placement search vs the full-recompute reference evaluator.

The Policy Maker (Algorithm 2) and the Migrate pass must evaluate hundreds
of candidate (Shrink, Expand) pairs and replica exchanges per scheduling
round without stalling training; FSMoE and Hecate both identify exactly
this planner overhead as the scaling bottleneck of online MoE scheduling.
This benchmark replays identical drifting workloads through both
evaluation paths and records:

* planner rounds/second of the delta search vs the reference evaluator
  (acceptance floor: >= 5x at the paper's 64-expert / 16-GPU scale);
* end-to-end simulated steps/second of the multi-layer pipelined engine
  with delta evaluation on vs off (acceptance floor: >= 2x);
* the equivalence verdicts: decision logs and simulated results must be
  identical, and the delta path must never fall back to full recompute.
"""

from conftest import run_once

from repro.bench.perf import pipeline_overhead_benchmark, planner_benchmark
from repro.bench.reporting import format_table

#: (experts, gpus) grid; the 64/16 point is the acceptance criterion.
SHAPES = ((16, 8), (64, 16), (128, 32))


def run_planner_bench():
    rows = []
    planner_results = {}
    for num_experts, num_gpus in SHAPES:
        result = planner_benchmark(
            num_experts=num_experts, num_gpus=num_gpus, num_steps=20
        )
        planner_results[(num_experts, num_gpus)] = result
        rows.append(
            [
                num_experts,
                num_gpus,
                f"{result['delta_rounds_per_sec']:.1f}",
                f"{result['reference_rounds_per_sec']:.1f}",
                f"{result['speedup']:.1f}x",
                "yes" if result["decisions_match"] else "NO",
            ]
        )
    pipeline = pipeline_overhead_benchmark(num_steps=20)
    rows.append(
        [
            "4L-pipeline",
            pipeline["num_gpus"],
            f"{pipeline['delta_steps_per_sec']:.1f}",
            f"{pipeline['reference_steps_per_sec']:.1f}",
            f"{pipeline['speedup']:.1f}x",
            "yes" if pipeline["simulated_results_match"] else "NO",
        ]
    )
    table = format_table(
        ["experts", "gpus", "delta /s", "reference /s", "speedup", "identical"],
        rows,
        title="Planner + engine throughput: delta-cost search vs reference",
    )
    return table, planner_results, pipeline


def test_planner_delta(benchmark, report):
    table, planner_results, pipeline = run_once(benchmark, run_planner_bench)
    report("planner_delta", table)
    for result in planner_results.values():
        assert result["decisions_match"]
        assert result["fallbacks"] == 0
        assert result["speedup"] > 1.0
    # Acceptance criteria: >= 5x planner rounds at the 64-expert / 16-GPU
    # scale, >= 2x end-to-end simulated steps/sec, identical decisions.
    assert planner_results[(64, 16)]["speedup"] >= 5.0
    assert pipeline["simulated_results_match"]
    assert pipeline["fallbacks"] == 0
    assert pipeline["speedup"] >= 2.0
