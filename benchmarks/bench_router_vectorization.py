"""Routing hot-path microbenchmark: vectorized vs reference router.

The flexible token router (Algorithm 3) runs on every step of every
simulated system, and the Policy Maker's what-if search leans on its
fractional relaxation hundreds of times per scheduling round — so its
per-call latency bounds how large a cluster/expert count the simulation
can sweep. The vectorized router batches locality, capacities and spill
apportionment across all experts; this benchmark times it against the
seed per-expert/per-source implementation (kept as
``ReferenceTokenRouter``) at the paper's 64-expert scale and asserts the
acceptance floor of a 5x speedup at 64 experts / 16 GPUs.
"""

from conftest import run_once

from repro.bench.harness import router_microbenchmark
from repro.bench.reporting import format_table

#: (experts, gpus) grid; the 64/16 point is the acceptance criterion.
SHAPES = ((16, 8), (64, 16), (128, 32))


def run_router_bench():
    rows = []
    measurements = {}
    for num_experts, num_gpus in SHAPES:
        result = router_microbenchmark(
            num_experts=num_experts, num_gpus=num_gpus, repeats=20
        )
        measurements[(num_experts, num_gpus)] = result
        rows.append(
            [
                num_experts,
                num_gpus,
                f"{result['vectorized_ms']:.3f}",
                f"{result['reference_ms']:.3f}",
                f"{result['speedup']:.1f}x",
            ]
        )
    table = format_table(
        ["experts", "gpus", "vectorized (ms)", "reference (ms)", "speedup"],
        rows,
        title="Routing microbenchmark: vectorized vs seed reference",
    )
    return table, measurements


def test_router_vectorization(benchmark, report):
    table, measurements = run_once(benchmark, run_router_bench)
    report("router_vectorization", table)
    # Acceptance criterion: >= 5x at the paper's 64-expert / 16-GPU scale.
    assert measurements[(64, 16)]["speedup"] >= 5.0
    for result in measurements.values():
        assert result["speedup"] > 1.0
