"""Figure 6a: balance-metric ablation — Max (ours) vs Variance.

The paper compares triggering on the balance ratio (Eq. 6's max/mean)
against triggering on the variance of per-GPU loads: Max wins by 1.03x on
average and up to 1.13x (Swin-MoE-L), because the step time is dominated by
the slowest GPU — the straggler — which the max tracks directly, while
variance "triggers adjustment more frequently but often gets empty
operations".
"""

from conftest import run_once

from repro.baselines import FlexMoESystem
from repro.bench.harness import SMOKE, cluster_for
from repro.bench.reporting import format_table
from repro.config import SchedulerConfig
from repro.model.zoo import get_model_config
from repro.training.loop import compare_systems

MODELS = (("GPT-MoE-S", 32), ("Swin-MoE-L", 64))


def run_fig6a():
    rows = []
    ratios = {}
    for model_name, num_gpus in MODELS:
        model = get_model_config(model_name)
        times = {}
        triggers = {}
        for metric in ("max", "variance"):
            config = SchedulerConfig(metric=metric)
            cmp = compare_systems(
                model,
                cluster_for(num_gpus),
                SMOKE.workload(seed=3),
                systems=[lambda ctx, c=config: FlexMoESystem(ctx, c)],
                warmup=SMOKE.warmup,
                seed=3,
            )
            run = cmp["FlexMoE"]
            times[metric] = run.mean_step_time
            triggers[metric] = run.summary()["scheduling_actions"]
        ratio = times["variance"] / times["max"]
        ratios[model_name] = ratio
        for metric in ("variance", "max"):
            rows.append(
                [
                    model_name,
                    "Max(ours)" if metric == "max" else "Variance",
                    f"{times[metric] * 1e3:.2f}",
                    int(triggers[metric]),
                    f"{times['variance'] / times[metric]:.2f}x",
                ]
            )
    table = format_table(
        ["model", "metric", "step(ms)", "actions", "vs Variance"],
        rows,
        title="Figure 6a: balance metric ablation (paper: Max wins ~1.03x avg)",
    )
    return table, ratios


def test_fig6a_metric_ablation(benchmark, report):
    table, ratios = run_once(benchmark, run_fig6a)
    report("fig6a_metrics", table)
    # Reproduction target: Max is at least competitive with Variance.
    for model_name, ratio in ratios.items():
        assert ratio > 0.9, f"Max metric should not lose badly on {model_name}"
