"""Table 2: model quality — FlexMoE (no drops) vs DeepSpeed (capacity 1.0).

The paper compares validation perplexity (BERT/GPT-MoE) and ImageNet
accuracy (Swin-MoE) between DeepSpeed (capacity factor 1.0 — tokens over
capacity dropped) and FlexMoE (all tokens processed), at identical
hyper-parameters: FlexMoE wins nearly every cell (e.g. BERT-MoE-S PPL 3.14
vs 3.53; Swin-MoE-S top-1 77.75 vs 77.32).

We train the NumPy stand-ins under exactly those two token policies and
report the same table. Deltas are small, as in the paper — averaging over
seeds keeps the ordering stable.
"""

import numpy as np
from conftest import run_once

from repro.bench.reporting import format_table
from repro.training.quality import train_classifier, train_language_model
from repro.workload.datasets import ClusterClassificationDataset, MarkovLMDataset

SEEDS = (0, 1, 2)


def run_table2():
    lm_dataset = MarkovLMDataset(vocab_size=32, num_states=8, seed=0)
    cls_dataset = ClusterClassificationDataset(
        num_classes=8, num_clusters=8, input_dim=32, noise=0.15, seed=0
    )

    def lm_ppl(capacity):
        values = [
            train_language_model(
                lm_dataset, capacity_factor=capacity, balance_coef=0.001,
                num_experts=8, steps=200, batch_size=24, seq_len=24,
                d_model=32, num_layers=4, eval_every=100, seed=seed,
            ).final_metric
            for seed in SEEDS
        ]
        return float(np.mean(values))

    def cls_acc(capacity, metric):
        values = [
            train_classifier(
                cls_dataset, capacity_factor=capacity, balance_coef=0.001,
                num_experts=8, steps=250, batch_size=128, d_model=32,
                num_layers=2, eval_every=125, metric=metric, seed=seed,
            ).final_metric
            for seed in SEEDS
        ]
        return float(100 * np.mean(values))

    results = {
        "DeepSpeed": {
            "LM PPL": lm_ppl(1.0),
            "acc@1": cls_acc(1.0, "top1"),
            "acc@5": cls_acc(1.0, "top5"),
        },
        "FlexMoE": {
            "LM PPL": lm_ppl(None),
            "acc@1": cls_acc(None, "top1"),
            "acc@5": cls_acc(None, "top5"),
        },
    }
    rows = [
        [
            system,
            f"{values['LM PPL']:.3f}",
            f"{values['acc@1']:.2f}%",
            f"{values['acc@5']:.2f}%",
        ]
        for system, values in results.items()
    ]
    table = format_table(
        ["system", "LM PPL (lower=better)", "acc@1", "acc@5"],
        rows,
        title=(
            "Table 2: model quality, capacity-1.0 dropping vs no dropping\n"
            "(paper: FlexMoE wins nearly all cells; deltas are small)"
        ),
    )
    return table, results


def test_table2_model_quality(benchmark, report):
    table, results = run_once(benchmark, run_table2)
    report("table2_quality", table)
    # Reproduction target (shape): processing every token is at least as
    # good as dropping, on the seed-averaged metrics.
    assert results["FlexMoE"]["LM PPL"] <= results["DeepSpeed"]["LM PPL"] * 1.02
    assert results["FlexMoE"]["acc@1"] >= results["DeepSpeed"]["acc@1"] - 1.0
