"""Design-choice ablations beyond the paper's figures.

DESIGN.md calls out four FlexMoE design choices whose value the paper
asserts but does not isolate; these ablations isolate them on a common
workload:

* vExpert granularity — slots per GPU (1 disables replication headroom);
* the background Migrate pass on/off;
* best-effort (deferred-commit) adjustment vs synchronous blocking;
* the gate flow-controller on/off under a bursty workload.
"""

import pytest
from conftest import run_once

from repro.baselines import FlexMoESystem
from repro.bench.harness import SMOKE, cluster_for
from repro.bench.reporting import format_table
from repro.config import SchedulerConfig
from repro.core.flow_control import GateFlowController
from repro.model.zoo import get_model_config
from repro.training.loop import compare_systems

MODEL = "GPT-MoE-S"
GPUS = 32


def run_config(config: SchedulerConfig, flow=None, seed=3):
    model = get_model_config(MODEL)
    cmp = compare_systems(
        model,
        cluster_for(GPUS),
        SMOKE.workload(seed=seed),
        systems=[
            lambda ctx, c=config, f=flow: FlexMoESystem(
                ctx, c, flow_control=f
            )
        ],
        warmup=SMOKE.warmup,
        seed=seed,
    )
    return cmp["FlexMoE"]


def test_ablation_vexpert_slots(benchmark, report):
    def run():
        rows = []
        times = {}
        for slots in (1, 2, 4, 8):
            run_result = run_config(SchedulerConfig(slots_per_gpu=slots))
            times[slots] = run_result.mean_step_time
            rows.append(
                [slots, f"{run_result.mean_step_time * 1e3:.2f}",
                 f"{run_result.summary()['mean_balance']:.2f}"]
            )
        return format_table(
            ["slots/GPU", "step(ms)", "balance"],
            rows,
            title="Ablation: vExpert slots per GPU (1 = no replication headroom)",
        ), times

    table, times = run_once(benchmark, run)
    report("ablation_vexpert_slots", table)
    # Replication headroom must pay off vs the 1-slot degenerate case.
    assert min(times[2], times[4]) < times[1]


def test_ablation_migrate_and_best_effort(benchmark, report):
    def run():
        configs = {
            "full FlexMoE": SchedulerConfig(),
            "no migrate": SchedulerConfig(migrate=False),
            "synchronous adjust": SchedulerConfig(best_effort=False),
        }
        rows = []
        times = {}
        for label, config in configs.items():
            run_result = run_config(config)
            times[label] = run_result.mean_step_time
            rows.append([label, f"{run_result.mean_step_time * 1e3:.2f}"])
        return format_table(
            ["variant", "step(ms)"],
            rows,
            title="Ablation: Migrate pass and best-effort adjustment",
        ), times

    table, times = run_once(benchmark, run)
    report("ablation_migrate_best_effort", table)
    assert times["full FlexMoE"] <= times["synchronous adjust"] * 1.05


def test_ablation_flow_control(benchmark, report):
    def run():
        rows = []
        times = {}
        for label, flow in (
            ("no flow control", None),
            ("flow control 2.0x", GateFlowController(watermark_factor=2.0)),
        ):
            # Bursty workload: strong drift provokes transient spikes.
            run_result = run_config(
                SchedulerConfig(), flow=flow, seed=13
            )
            times[label] = run_result.mean_step_time
            rows.append(
                [
                    label,
                    f"{run_result.mean_step_time * 1e3:.2f}",
                    f"{run_result.mean_token_efficiency:.3f}",
                ]
            )
        return format_table(
            ["variant", "step(ms)", "tok-eff (per-step)"],
            rows,
            title="Ablation: gate flow-control under bursty routing",
        ), times

    table, times = run_once(benchmark, run)
    report("ablation_flow_control", table)
    assert times["flow control 2.0x"] <= times["no flow control"] * 1.10
