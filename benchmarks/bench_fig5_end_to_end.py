"""Figure 5: end-to-end time-to-quality comparison.

Paper setup: S models (32 experts) on 32 GPUs, L models (64 experts) on
64 GPUs; FlexMoE vs FasterMoE vs DeepSpeed, measuring the training time to
reach the target model quality.

Paper results: FlexMoE outperforms DeepSpeed by 1.70x on average (up to
2.10x) and FasterMoE by 1.30x on average (up to 1.45x); DeepSpeed has the
*smallest iteration time* (it drops tokens) but needs more iterations.

We report the same bar groups: time-to-quality normalized to DeepSpeed.
Absolute times differ (simulated substrate); the ordering and rough factors
are the reproduction target.
"""

import pytest
from conftest import run_once

from repro.bench.harness import BASE_ITERATIONS, SMOKE, figure5_comparison
from repro.bench.reporting import format_table
from repro.training.convergence import ConvergenceModel

S_MODELS = ("BERT-MoE-S", "GPT-MoE-S", "Swin-MoE-S")
L_MODELS = ("BERT-MoE-L", "GPT-MoE-L", "Swin-MoE-L")


def run_group(models, num_gpus):
    convergence = ConvergenceModel()
    rows = []
    speedups = {}
    for model_name in models:
        cmp = figure5_comparison(model_name, num_gpus, scale=SMOKE)
        ttq = {
            name: cmp[name].time_to_quality(BASE_ITERATIONS, convergence)
            for name in cmp.systems
        }
        baseline = ttq["DeepSpeed"]
        for name in cmp.systems:
            rows.append(
                [
                    model_name,
                    name,
                    f"{cmp[name].mean_step_time * 1e3:.2f}",
                    f"{cmp[name].mean_token_efficiency:.3f}",
                    f"{ttq[name] / 3600:.2f}",
                    f"{baseline / ttq[name]:.2f}x",
                ]
            )
        speedups[model_name] = (
            baseline / ttq["FlexMoE"],
            ttq["FasterMoE"] / ttq["FlexMoE"],
        )
    table = format_table(
        ["model", "system", "step(ms)", "tok-eff", "TTQ(h)", "vs DeepSpeed"],
        rows,
        title=f"Figure 5 ({num_gpus} GPUs): time-to-quality",
    )
    return table, speedups


@pytest.mark.parametrize(
    "models,num_gpus,tag",
    [(S_MODELS, 32, "5a_32gpu"), (L_MODELS, 64, "5b_64gpu")],
)
def test_figure5_time_to_quality(benchmark, report, models, num_gpus, tag):
    table, speedups = run_once(benchmark, lambda: run_group(models, num_gpus))
    lines = [table, ""]
    for model_name, (vs_ds, vs_fm) in speedups.items():
        lines.append(
            f"{model_name}: FlexMoE vs DeepSpeed {vs_ds:.2f}x, "
            f"vs FasterMoE {vs_fm:.2f}x "
            f"(paper: 1.36-2.10x / 1.15-1.45x)"
        )
    report(f"fig{tag}_end_to_end", "\n".join(lines))
    # Reproduction target: FlexMoE wins time-to-quality on every model.
    for model_name, (vs_ds, vs_fm) in speedups.items():
        assert vs_ds > 1.0, f"FlexMoE should beat DeepSpeed on {model_name}"
        assert vs_fm > 1.0, f"FlexMoE should beat FasterMoE on {model_name}"
