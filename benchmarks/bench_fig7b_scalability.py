"""Figure 7b: scalability of a single MoE layer (64 experts).

The paper scales one 64-expert MoE layer over 8, 16, 32 and 64 GPUs and
reports throughput normalized to DeepSpeed on 8 GPUs; FlexMoE reaches
6.7x / 10.7x / 19.8x / 35.6x and "significantly outperforms DeepSpeed and
FasterMoE" at every size, because on a fast interconnect the balanced
computation dominates.

Throughput here is processed tokens per second (dropped tokens do not
count — they produce no learning), which is the quantity that scales in
the paper's plot.
"""

from conftest import run_once

from repro.bench.harness import SMOKE, scalability_sweep
from repro.bench.reporting import format_series, format_table

GPU_COUNTS = (8, 16, 32, 64)
PAPER_FLEXMOE = {8: 6.7, 16: 10.7, 32: 19.8, 64: 35.6}


def throughput(run) -> float:
    """Processed tokens per simulated second."""
    processed = sum(r.processed_tokens for r in run.results)
    return processed / run.step_times.sum()


def run_fig7b():
    sweeps = scalability_sweep(GPU_COUNTS, num_experts=64, scale=SMOKE)
    base = throughput(sweeps[8]["DeepSpeed"])
    rows = []
    series = {}
    for name in ("DeepSpeed", "FasterMoE", "FlexMoE"):
        values = [throughput(sweeps[g][name]) / base for g in GPU_COUNTS]
        series[name] = values
        for g, v in zip(GPU_COUNTS, values):
            rows.append([name, g, f"{v:.1f}x"])
    table = format_table(
        ["system", "gpus", "speedup vs DeepSpeed-8"],
        rows,
        title="Figure 7b: single-layer scalability (64 experts)",
    )
    lines = [
        format_series(name, GPU_COUNTS, [round(v, 1) for v in values])
        for name, values in series.items()
    ]
    lines.append(
        format_series(
            "FlexMoE (paper)", GPU_COUNTS, list(PAPER_FLEXMOE.values())
        )
    )
    return table + "\n\n" + "\n".join(lines), series


def test_fig7b_scalability(benchmark, report):
    output, series = run_once(benchmark, run_fig7b)
    report("fig7b_scalability", output)
    flex = dict(zip(GPU_COUNTS, series["FlexMoE"]))
    # FlexMoE throughput grows with cluster size...
    assert flex[64] > flex[32] > flex[16] > flex[8]
    # ...beats DeepSpeed at every size...
    for g, ds in zip(GPU_COUNTS, series["DeepSpeed"]):
        assert flex[g] > ds
    # ...and beats FasterMoE at the largest size (global-sync penalty).
    assert flex[64] > series["FasterMoE"][-1]
