"""Table 1: the evaluation models and their parameter counts.

Regenerates the model-configuration table and validates our reading of it:
the architecture-derived parameter totals (MoE on every other layer,
two-matrix experts) should land on the paper's printed "Params." column.
"""

from conftest import run_once

from repro.bench.reporting import format_table
from repro.model.zoo import (
    MODEL_ZOO,
    GPT_VOCAB,
    NLP_VOCAB,
    PAPER_PARAMS,
    estimate_total_params,
    moe_layer_count,
)


def _vocab_for(name: str) -> int:
    if name.startswith("BERT"):
        return NLP_VOCAB
    if name.startswith("GPT"):
        return GPT_VOCAB
    return 0


def build_table() -> str:
    rows = []
    for name, config in MODEL_ZOO.items():
        derived = estimate_total_params(config, _vocab_for(name))
        paper = PAPER_PARAMS[name]
        rows.append(
            [
                name,
                config.num_layers,
                config.d_model,
                config.d_ffn,
                config.num_experts,
                moe_layer_count(config),
                f"{derived / 1e9:.3f}B",
                f"{paper / 1e9:.3f}B",
                f"{100 * (derived - paper) / paper:+.1f}%",
            ]
        )
    return format_table(
        ["model", "#layer", "dModel", "dFFN", "#expert", "#moe",
         "derived", "paper", "delta"],
        rows,
        title="Table 1: models for evaluation",
    )


def test_table1_model_registry(benchmark, report):
    table = run_once(benchmark, build_table)
    report("table1_models", table)
    # BERT rows must match the paper closely (the dims are fully printed).
    assert "BERT-MoE-S" in table
