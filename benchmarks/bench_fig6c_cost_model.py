"""Figure 6c: cost-model estimation accuracy.

The paper validates its profiling-based cost models by comparing estimated
vs real cost for computation / All-to-All / AllReduce across input sizes,
reporting an average prediction error below 3%.

We do the same: the estimates come from a *noisy profile* (what FlexMoE's
Policy Maker sees); the "real" costs come from the ground-truth executor
with jitter (what the simulated hardware actually does).
"""

import numpy as np
from conftest import run_once

from repro.bench.reporting import format_table
from repro.baselines.base import build_context
from repro.bench.harness import cluster_for
from repro.core.cost_model import MoECostModel
from repro.model.zoo import get_model_config


def run_fig6c():
    model = get_model_config("GPT-MoE-S")
    context = build_context(cluster_for(16), model, seed=5)
    cost_model = MoECostModel(context.profile, model)
    executor = context.executor
    rng = np.random.default_rng(0)

    rows = []
    errors = []

    # --- computation across input sizes ------------------------------
    for tokens in (1_000, 10_000, 100_000, 1_000_000):
        est = cost_model.compute_time(tokens, 3)
        real = np.mean([executor.real_compute_time(tokens, 3) for _ in range(5)])
        err = abs(est - real) / real
        errors.append(err)
        rows.append(["compute", f"{tokens}", f"{est*1e3:.3f}", f"{real*1e3:.3f}",
                     f"{100*err:.1f}%"])

    # --- All-to-All across message sizes ------------------------------
    for tokens in (10_000, 100_000, 1_000_000):
        routes = np.zeros((model.num_experts, 16, 16))
        for g in range(16):
            routes[rng.integers(0, model.num_experts), g, (g + 5) % 16] = tokens / 16
        est = cost_model.all_to_all_times(routes).max()
        real = 4 * np.mean(
            [executor.real_a2a_pass_time(routes) for _ in range(5)]
        )
        err = abs(est - real) / real
        errors.append(err)
        rows.append(["all-to-all", f"{tokens}", f"{est*1e3:.3f}",
                     f"{real*1e3:.3f}", f"{100*err:.1f}%"])

    # --- AllReduce across group sizes ---------------------------------
    for group in ((0, 1), (0, 1, 2, 3), tuple(range(8)), tuple(range(16))):
        est = model.expert_bytes / context.profile.allreduce_bps(group)
        real = np.mean(
            [
                executor.real_allreduce_time(model.expert_bytes, group)
                for _ in range(5)
            ]
        )
        err = abs(est - real) / real
        errors.append(err)
        rows.append(["allreduce", f"group={len(group)}", f"{est*1e3:.3f}",
                     f"{real*1e3:.3f}", f"{100*err:.1f}%"])

    table = format_table(
        ["operation", "input", "estimated(ms)", "real(ms)", "error"],
        rows,
        title="Figure 6c: cost-model estimation vs real cost",
    )
    mean_error = float(np.mean(errors))
    return table, mean_error


def test_fig6c_cost_model_accuracy(benchmark, report):
    table, mean_error = run_once(benchmark, run_fig6c)
    report(
        "fig6c_cost_model",
        table + f"\n\nmean error: {100*mean_error:.2f}% (paper: < 3%)",
    )
    assert mean_error < 0.05
