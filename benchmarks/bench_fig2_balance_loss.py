"""Figure 2: model quality vs GPU utilization across balance-loss weights.

The paper trains Swin-MoE under balance-loss coefficients
{0, 0.001, 0.005, 0.01, 0.05} with *unlimited* capacity (no token drops)
and reports: GPU utilization rises from 18.77% to 63.30% while top-5
accuracy falls from 94.588% to 93.981% — the quality/efficiency dilemma
motivating FlexMoE.

We reproduce both axes from one real training run per coefficient:
accuracy from the NumPy Swin stand-in, utilization by feeding the run's
measured routing trace into the expert-parallel simulator (no capacity,
as in the paper's setup).
"""

import numpy as np
from conftest import run_once

from repro.baselines import ExpertParallelSystem, build_context
from repro.bench.harness import cluster_for
from repro.bench.reporting import format_table
from repro.config import MoEModelConfig
from repro.training.loop import simulate_training
from repro.training.quality import train_classifier
from repro.workload.datasets import ClusterClassificationDataset

COEFFICIENTS = (0.0, 0.001, 0.005, 0.01, 0.05)


def utilization_of_trace(result) -> float:
    """GPU utilization of expert parallelism under the measured routing."""
    model = MoEModelConfig("swin-sim", 2, 512, 2048, 8)
    context = build_context(cluster_for(8), model, seed=0)
    system = ExpertParallelSystem(context, capacity_factor=None)
    trace = result.routing_trace(num_gpus=8, seed=0)
    # Scale counts up so compute dominates fixed latencies, as in training.
    frames = trace.expert_loads() * 2000
    from repro.workload.trace import RoutingTrace

    scaled = np.repeat(frames[:, :, None] // 8, 8, axis=2)
    run = simulate_training(system, RoutingTrace(scaled))
    return run.summary()["mean_utilization"]


def run_fig2():
    dataset = ClusterClassificationDataset(
        num_classes=8, num_clusters=8, input_dim=32, cluster_skew=1.0,
        noise=0.15, seed=0,
    )
    rows = []
    accuracies = []
    utilizations = []
    for coef in COEFFICIENTS:
        accs = []
        for seed in range(2):
            result = train_classifier(
                dataset,
                capacity_factor=None,  # paper: no capacity limit
                balance_coef=coef,
                num_experts=8,
                steps=250,
                batch_size=128,
                d_model=32,
                num_layers=2,
                eval_every=50,
                metric="top5",
                seed=seed,
            )
            accs.append(result.final_metric)
        util = utilization_of_trace(result)
        accuracy = float(np.mean(accs))
        accuracies.append(accuracy)
        utilizations.append(util)
        rows.append(
            [coef, f"{100 * accuracy:.2f}%", f"{100 * util:.2f}%"]
        )
    table = format_table(
        ["balance coef", "top-5 accuracy", "GPU utilization"],
        rows,
        title=(
            "Figure 2: quality vs utilization across balance-loss weights\n"
            "(paper: acc 94.59% -> 93.98%, util 18.8% -> 63.3%)"
        ),
    )
    return table, accuracies, utilizations


def test_fig2_balance_loss_tradeoff(benchmark, report):
    table, accuracies, utilizations = run_once(benchmark, run_fig2)
    report("fig2_balance_loss", table)
    # Utilization must rise materially from coef=0 to the largest coef.
    assert utilizations[-1] > utilizations[0] * 1.2
    # Quality must not *improve* materially under heavy balance pressure:
    # the trade-off shape allows noise but not a win.
    assert accuracies[-1] <= accuracies[0] + 0.03
