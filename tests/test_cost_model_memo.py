"""Cost-model memoization: cached evaluations must equal uncached ones."""

import numpy as np
import pytest

from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, MoEModelConfig
from repro.core.cost_model import MemoizedStepCost, MoECostModel
from repro.core.placement import Placement
from repro.core.policy import PolicyMaker
from repro.core.router import FlexibleTokenRouter
from repro.exceptions import ConfigurationError

MODEL = MoEModelConfig("memo", num_layers=2, d_model=256, d_ffn=1024, num_experts=8)
CLUSTER = ClusterConfig(num_nodes=1, gpus_per_node=4)


@pytest.fixture
def cost_model() -> MoECostModel:
    topology = ClusterTopology(CLUSTER)
    profile = Profiler(topology, noise=0.0, seed=0).profile(MODEL)
    return MoECostModel(profile, MODEL)


def test_memo_matches_uncached(cost_model, rng):
    router = FlexibleTokenRouter()
    memo = MemoizedStepCost(cost_model, router)
    for _ in range(20):
        placement = Placement.balanced(8, 4, int(rng.integers(2, 5)))
        assignment = rng.integers(0, 3000, (8, 4))
        uncached = cost_model.step_time(
            router.route_fractional(assignment, placement), placement
        )
        assert memo.step_time(assignment, placement) == uncached
        # Replay: the cached value must be bit-identical too.
        assert memo.step_time(assignment, placement) == uncached


def test_hit_and_miss_accounting(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    placement = Placement.balanced(8, 4, 2)
    a = rng.integers(0, 1000, (8, 4))
    b = rng.integers(0, 1000, (8, 4))
    memo.step_time(a, placement)
    memo.step_time(a, placement)
    memo.step_time(b, placement)
    assert memo.misses == 2
    assert memo.hits == 1
    assert memo.hit_rate == pytest.approx(1 / 3)
    assert len(memo) == 2


def test_distinct_placements_are_distinct_keys(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    assignment = rng.integers(0, 1000, (8, 4))
    balanced = Placement.balanced(8, 4, 4)  # two replicas per expert
    shifted = balanced.copy()
    shifted.remove_vexpert(0, balanced.gpus_of(0)[0])
    shifted.add_vexpert(1, balanced.gpus_of(0)[0])
    memo.step_time(assignment, balanced)
    memo.step_time(assignment, shifted)
    assert memo.misses == 2


def test_lru_eviction(cost_model, rng):
    memo = MemoizedStepCost(cost_model, capacity=2)
    placement = Placement.balanced(8, 4, 2)
    frames = [rng.integers(0, 1000, (8, 4)) for _ in range(3)]
    for frame in frames:
        memo.step_time(frame, placement)
    assert len(memo) == 2
    # The oldest entry was evicted: querying it again misses.
    memo.step_time(frames[0], placement)
    assert memo.misses == 4


def test_clear(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    memo.step_time(rng.integers(0, 1000, (8, 4)), Placement.balanced(8, 4, 2))
    memo.clear()
    assert len(memo) == 0
    assert memo.hits == 0 and memo.misses == 0


def test_capacity_validated(cost_model):
    with pytest.raises(ConfigurationError):
        MemoizedStepCost(cost_model, capacity=0)


def test_policy_maker_uses_memo(cost_model, rng):
    # The reference (non-delta) search path runs on the memo; the delta
    # path has its own evaluator and is covered by test_delta_cost.py.
    policy = PolicyMaker(cost_model, use_delta=False)
    placement = Placement.balanced(8, 4, 4)
    assignment = rng.integers(0, 5000, (8, 4))
    policy.make_plan(assignment, placement)
    first_misses = policy.memo.misses
    assert first_misses > 0
    # Same query again: the search replays entirely from the memo.
    policy.make_plan(assignment, placement)
    assert policy.memo.misses == first_misses
    assert policy.memo.hits > 0


def test_assignment_key_precomputation_matches(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    placement = Placement.balanced(8, 4, 2)
    assignment = rng.integers(0, 1000, (8, 4))
    key = MemoizedStepCost.assignment_key(assignment)
    direct = memo.step_time(assignment, placement)
    keyed = memo.step_time(assignment, placement, assignment_key=key)
    assert keyed == direct
    assert memo.hits == 1  # the precomputed key found the same entry
    stats = memo.stats()
    assert stats["hits"] == 1.0 and stats["misses"] == 1.0


def test_policy_decisions_unchanged_by_memo(cost_model, rng):
    # Two fresh policy makers (cold caches) agree; and a warm cache gives
    # the same plan as a cold one.
    placement = Placement.balanced(8, 4, 4)
    assignment = rng.integers(0, 5000, (8, 4))
    cold = PolicyMaker(cost_model, use_delta=False).make_plan(
        assignment, placement.copy()
    )
    warm_policy = PolicyMaker(cost_model, use_delta=False)
    warm_policy.make_plan(assignment, placement.copy())
    warm = warm_policy.make_plan(assignment, placement.copy())
    assert cold.actions == warm.actions
    assert cold.time_after == warm.time_after
