"""Cost-model memoization: cached evaluations must equal uncached ones."""

import numpy as np
import pytest

from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, MoEModelConfig
from repro.core.cost_model import MemoizedStepCost, MoECostModel
from repro.core.placement import Placement
from repro.core.policy import PolicyMaker
from repro.core.router import FlexibleTokenRouter
from repro.exceptions import ConfigurationError

MODEL = MoEModelConfig("memo", num_layers=2, d_model=256, d_ffn=1024, num_experts=8)
CLUSTER = ClusterConfig(num_nodes=1, gpus_per_node=4)


@pytest.fixture
def cost_model() -> MoECostModel:
    topology = ClusterTopology(CLUSTER)
    profile = Profiler(topology, noise=0.0, seed=0).profile(MODEL)
    return MoECostModel(profile, MODEL)


def test_memo_matches_uncached(cost_model, rng):
    router = FlexibleTokenRouter()
    memo = MemoizedStepCost(cost_model, router)
    for _ in range(20):
        placement = Placement.balanced(8, 4, int(rng.integers(2, 5)))
        assignment = rng.integers(0, 3000, (8, 4))
        uncached = cost_model.step_time(
            router.route_fractional(assignment, placement), placement
        )
        assert memo.step_time(assignment, placement) == uncached
        # Replay: the cached value must be bit-identical too.
        assert memo.step_time(assignment, placement) == uncached


def test_hit_and_miss_accounting(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    placement = Placement.balanced(8, 4, 2)
    a = rng.integers(0, 1000, (8, 4))
    b = rng.integers(0, 1000, (8, 4))
    memo.step_time(a, placement)
    memo.step_time(a, placement)
    memo.step_time(b, placement)
    assert memo.misses == 2
    assert memo.hits == 1
    assert memo.hit_rate == pytest.approx(1 / 3)
    assert len(memo) == 2


def test_distinct_placements_are_distinct_keys(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    assignment = rng.integers(0, 1000, (8, 4))
    balanced = Placement.balanced(8, 4, 4)  # two replicas per expert
    shifted = balanced.copy()
    shifted.remove_vexpert(0, balanced.gpus_of(0)[0])
    shifted.add_vexpert(1, balanced.gpus_of(0)[0])
    memo.step_time(assignment, balanced)
    memo.step_time(assignment, shifted)
    assert memo.misses == 2


def test_lru_eviction(cost_model, rng):
    memo = MemoizedStepCost(cost_model, capacity=2)
    placement = Placement.balanced(8, 4, 2)
    frames = [rng.integers(0, 1000, (8, 4)) for _ in range(3)]
    for frame in frames:
        memo.step_time(frame, placement)
    assert len(memo) == 2
    # The oldest entry was evicted: querying it again misses.
    memo.step_time(frames[0], placement)
    assert memo.misses == 4


def test_clear(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    memo.step_time(rng.integers(0, 1000, (8, 4)), Placement.balanced(8, 4, 2))
    memo.clear()
    assert len(memo) == 0
    assert memo.hits == 0 and memo.misses == 0


def test_capacity_validated(cost_model):
    with pytest.raises(ConfigurationError):
        MemoizedStepCost(cost_model, capacity=0)


def test_policy_maker_uses_memo(cost_model, rng):
    # The reference (non-delta) search path runs on the memo; the delta
    # path has its own evaluator and is covered by test_delta_cost.py.
    policy = PolicyMaker(cost_model, use_delta=False)
    placement = Placement.balanced(8, 4, 4)
    assignment = rng.integers(0, 5000, (8, 4))
    policy.make_plan(assignment, placement)
    first_misses = policy.memo.misses
    assert first_misses > 0
    # Same query again: the search replays entirely from the memo.
    policy.make_plan(assignment, placement)
    assert policy.memo.misses == first_misses
    assert policy.memo.hits > 0


def test_assignment_key_precomputation_matches(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    placement = Placement.balanced(8, 4, 2)
    assignment = rng.integers(0, 1000, (8, 4))
    key = MemoizedStepCost.assignment_key(assignment)
    direct = memo.step_time(assignment, placement)
    keyed = memo.step_time(assignment, placement, assignment_key=key)
    assert keyed == direct
    assert memo.hits == 1  # the precomputed key found the same entry
    stats = memo.stats()
    assert stats["hits"] == 1.0 and stats["misses"] == 1.0


def test_policy_decisions_unchanged_by_memo(cost_model, rng):
    # Two fresh policy makers (cold caches) agree; and a warm cache gives
    # the same plan as a cold one.
    placement = Placement.balanced(8, 4, 4)
    assignment = rng.integers(0, 5000, (8, 4))
    cold = PolicyMaker(cost_model, use_delta=False).make_plan(
        assignment, placement.copy()
    )
    warm_policy = PolicyMaker(cost_model, use_delta=False)
    warm_policy.make_plan(assignment, placement.copy())
    warm = warm_policy.make_plan(assignment, placement.copy())
    assert cold.actions == warm.actions
    assert cold.time_after == warm.time_after


def test_invalidate_drops_entries_but_keeps_accounting(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    placement = Placement.balanced(8, 4, 2)
    assignment = rng.integers(0, 1000, (8, 4))
    first = memo.step_time(assignment, placement)
    memo.invalidate()
    assert len(memo) == 0
    # The next query re-derives (a miss), and must equal the dropped
    # value bit-for-bit -- nothing priced differently.
    assert memo.step_time(assignment, placement) == first
    assert memo.misses == 2 and memo.hits == 0


def test_phase_stats_attribute_hits_to_callers(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    placement = Placement.balanced(8, 4, 2)
    assignment = rng.integers(0, 1000, (8, 4))
    memo.step_time(assignment, placement, phase="policy")
    memo.step_time(assignment, placement, phase="migration")
    memo.step_time(assignment, placement, phase="migration")
    stats = memo.phase_stats()
    assert stats["policy"] == {"hits": 0.0, "misses": 1.0, "hit_rate": 0.0}
    assert stats["migration"]["hits"] == 2.0
    assert stats["migration"]["hit_rate"] == 1.0
    assert memo.stats()["phases"] == stats
    # Unattributed queries count globally but under no phase.
    memo.step_time(assignment, placement)
    assert memo.hits == 3
    assert memo.phase_stats() == stats


def test_memo_exact_across_trial_rollback(cost_model, rng):
    """The trial-journal workflow: mutate, price, roll back, re-price.
    Every cached answer must equal the freshly derived one."""
    router = FlexibleTokenRouter()
    memo = MemoizedStepCost(cost_model, router)
    placement = Placement.balanced(8, 4, 4)
    assignment = rng.integers(0, 3000, (8, 4))

    def uncached(p):
        return cost_model.step_time(
            router.route_fractional(assignment, p), p
        )

    base = memo.step_time(assignment, placement)
    assert base == uncached(placement)
    token = placement.begin_trial()
    gpu = placement.gpus_of(0)[0]
    placement.remove_vexpert(0, gpu)
    placement.add_vexpert(1, gpu)
    trial_cost = memo.step_time(assignment, placement)
    assert trial_cost == uncached(placement)
    placement.rollback(token)
    # Back at the base content: the memo must hit AND return the exact
    # original value, not the trial's.
    assert memo.step_time(assignment, placement) == base
    assert memo.hits >= 1


def test_state_token_distinguishes_aliased_versions(cost_model, rng):
    """Two different mutations branching from the same version both land
    on version v+1 -- the per-object version counter aliases. The state
    token must not, or the memo would replay the wrong branch's cost."""
    assignment = rng.integers(0, 3000, (8, 4))
    memo = MemoizedStepCost(cost_model)
    placement = Placement.balanced(8, 4, 4)

    token = placement.begin_trial()
    gpu0 = placement.gpus_of(0)[0]
    placement.remove_vexpert(0, gpu0)
    branch_a_version = placement.version
    cost_a = memo.step_time(assignment, placement)
    placement.rollback(token)

    token = placement.begin_trial()
    gpu7 = placement.gpus_of(7)[0]
    placement.remove_vexpert(7, gpu7)
    # Same version number as branch A, different content.
    assert placement.version == branch_a_version
    cost_b = memo.step_time(assignment, placement)
    placement.rollback(token)

    router = FlexibleTokenRouter()
    assert cost_b == cost_model.step_time(
        router.route_fractional(assignment, placement_after(placement, 7)),
        placement_after(placement, 7),
    )
    assert cost_a != cost_b


def placement_after(placement, expert):
    """A copy of ``placement`` with one replica of ``expert`` removed
    (the content branch B priced)."""
    clone = placement.copy()
    clone.remove_vexpert(expert, clone.gpus_of(expert)[0])
    return clone


def test_shared_memo_hits_on_migration_baseline(cost_model, rng):
    """The Scheduler shares one memo between the Policy Maker and the
    Migration Planner, so the planner's reference-path baseline -- the
    exact configuration the policy just scored -- is a cache hit."""
    from repro.cluster.topology import ClusterTopology
    from repro.core.migration import MigrationPlanner

    topology = ClusterTopology(CLUSTER)
    policy = PolicyMaker(cost_model, use_delta=False)
    planner = MigrationPlanner(
        cost_model, topology, use_delta=False, memo=policy.memo
    )
    placement = Placement.balanced(8, 4, 4)
    assignment = rng.integers(0, 5000, (8, 4))
    policy.make_plan(assignment, placement)
    before = policy.memo.hits
    planner.step_time(assignment, placement)
    assert policy.memo.hits == before + 1
    phases = policy.memo.phase_stats()
    assert phases["migration"]["hits"] == 1.0


from hypothesis import HealthCheck, given, settings, strategies as st


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["add", "remove", "move", "trial", "rollback"]),
            st.integers(0, 7),  # expert
            st.integers(0, 3),  # gpu / destination
        ),
        min_size=1,
        max_size=25,
    ),
    seed=st.integers(0, 2**16),
)
def test_memo_exact_under_random_mutation_and_rollback(cost_model, ops, seed):
    """Property: after ANY sequence of placement mutations, trials and
    rollbacks, the memo returns the bit-exact uncached cost -- hits
    included (the state-token shortcut never replays a stale entry)."""
    rng = np.random.default_rng(seed)
    router = FlexibleTokenRouter()
    memo = MemoizedStepCost(cost_model, router)
    placement = Placement.balanced(8, 4, 4)
    assignment = rng.integers(0, 3000, (8, 4))
    tokens = []
    for op, expert, gpu in ops:
        try:
            if op == "add":
                placement.add_vexpert(expert, gpu)
            elif op == "remove":
                placement.remove_vexpert(expert, gpu)
            elif op == "move":
                src = placement.gpus_of(expert)[0]
                placement.move_vexpert(expert, src, gpu)
            elif op == "trial":
                tokens.append(placement.begin_trial())
            elif op == "rollback" and tokens:
                placement.rollback(tokens.pop())
        except Exception:
            # Illegal mutations (full GPU, last replica, no journal...)
            # are not the property under test; the memo must stay exact
            # regardless of which ops succeeded.
            pass
        uncached = cost_model.step_time(
            router.route_fractional(assignment, placement), placement
        )
        assert memo.step_time(assignment, placement) == uncached
