"""Admission queue: FIFO micro-batching and token-depth backpressure."""

import pytest

from repro.exceptions import ConfigurationError
from repro.serving.admission import AdmissionQueue, BatchingConfig
from repro.serving.requests import Request


def request(index, tokens, arrival=0.0, topic=0):
    return Request(index=index, arrival=arrival, tokens=tokens, topic=topic)


class TestBatchingConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(max_batch_tokens=0)
        with pytest.raises(ConfigurationError):
            BatchingConfig(max_queue_tokens=0)

    def test_replace(self):
        config = BatchingConfig(max_batch_tokens=100)
        assert config.replace(max_queue_tokens=500).max_batch_tokens == 100


class TestBatching:
    def test_fifo_order_and_token_budget(self):
        queue = AdmissionQueue(BatchingConfig(max_batch_tokens=100))
        for i, tokens in enumerate((40, 40, 40, 10)):
            assert queue.offer(request(i, tokens))
        batch = queue.next_batch()
        assert [r.index for r in batch] == [0, 1]  # 40+40, third would spill
        assert queue.queued_tokens == 50
        assert [r.index for r in queue.next_batch()] == [2, 3]
        assert queue.next_batch() == ()
        assert queue.queued_tokens == 0

    def test_oversized_request_forms_its_own_batch(self):
        queue = AdmissionQueue(BatchingConfig(max_batch_tokens=100))
        assert queue.offer(request(0, 500))
        assert queue.offer(request(1, 10))
        batch = queue.next_batch()
        assert [r.index for r in batch] == [0]
        assert [r.index for r in queue.next_batch()] == [1]

    def test_token_accounting(self):
        queue = AdmissionQueue(BatchingConfig(max_batch_tokens=64))
        queue.offer(request(0, 30))
        queue.offer(request(1, 20))
        assert queue.queued_tokens == 50
        assert queue.queued_requests == 2
        assert len(queue) == 2


class TestBackpressure:
    def test_rejects_beyond_queue_limit(self):
        queue = AdmissionQueue(
            BatchingConfig(max_batch_tokens=100, max_queue_tokens=100)
        )
        assert queue.offer(request(0, 60))
        assert queue.offer(request(1, 40))
        assert not queue.offer(request(2, 10))  # 110 > 100
        assert queue.rejected_requests == 1
        assert queue.queued_tokens == 100

    def test_empty_queue_always_admits(self):
        queue = AdmissionQueue(
            BatchingConfig(max_batch_tokens=100, max_queue_tokens=50)
        )
        assert queue.offer(request(0, 500))  # oversized but queue empty
        assert not queue.offer(request(1, 1))

    def test_unbounded_by_default(self):
        queue = AdmissionQueue(BatchingConfig(max_batch_tokens=10))
        for i in range(100):
            assert queue.offer(request(i, 1000))
        assert queue.rejected_requests == 0
