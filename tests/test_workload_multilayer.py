"""Tests for MultiLayerTrace and the per-layer trace generator."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.exceptions import RoutingError
from repro.workload.synthetic import make_multilayer_trace, make_trace
from repro.workload.trace import MultiLayerTrace, RoutingTrace


def small_config(**overrides) -> WorkloadConfig:
    base = dict(tokens_per_step=10_000, num_steps=5, seed=4)
    base.update(overrides)
    return WorkloadConfig(**base)


class TestContainer:
    def test_shapes(self):
        trace = make_multilayer_trace(3, 8, 4, small_config())
        assert trace.num_layers == 3
        assert trace.num_steps == 5
        assert trace.num_experts == 8
        assert trace.num_gpus == 4
        assert len(trace) == 5

    def test_step_stacks_layers(self):
        trace = make_multilayer_trace(3, 8, 4, small_config())
        step = trace.step(0)
        assert step.shape == (3, 8, 4)
        for layer in range(3):
            assert np.array_equal(step[layer], trace.layer(layer).step(0))

    def test_layer_returns_routing_trace(self):
        trace = make_multilayer_trace(2, 8, 4, small_config())
        layer = trace.layer(1)
        assert isinstance(layer, RoutingTrace)
        assert layer.num_steps == trace.num_steps

    def test_from_layers_roundtrip(self):
        layers = [
            make_trace(8, 4, small_config(seed=seed)) for seed in (1, 2)
        ]
        stacked = MultiLayerTrace.from_layers(layers)
        assert stacked.layer(0) == layers[0]
        assert stacked.layer(1) == layers[1]

    def test_from_layers_shape_mismatch(self):
        a = make_trace(8, 4, small_config())
        b = make_trace(4, 4, small_config())
        with pytest.raises(RoutingError):
            MultiLayerTrace.from_layers([a, b])

    def test_from_layers_empty(self):
        with pytest.raises(RoutingError):
            MultiLayerTrace.from_layers([])

    def test_slice(self):
        trace = make_multilayer_trace(2, 8, 4, small_config())
        sliced = trace.slice(1, 4)
        assert sliced.num_steps == 3
        assert np.array_equal(sliced.step(0), trace.step(1))

    def test_tokens_per_step(self):
        trace = make_multilayer_trace(2, 8, 4, small_config())
        totals = trace.tokens_per_step()
        assert totals.shape == (5,)
        assert (totals == 2 * 10_000).all()

    def test_rejects_bad_shapes(self):
        with pytest.raises(RoutingError):
            MultiLayerTrace(np.zeros((2, 3, 4), dtype=np.int64))
        with pytest.raises(RoutingError):
            MultiLayerTrace(-np.ones((1, 2, 3, 4), dtype=np.int64))

    def test_out_of_range_access(self):
        trace = make_multilayer_trace(2, 8, 4, small_config())
        with pytest.raises(RoutingError):
            trace.step(5)
        with pytest.raises(RoutingError):
            trace.layer(2)

    def test_save_load_roundtrip(self, tmp_path):
        trace = make_multilayer_trace(2, 8, 4, small_config())
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert MultiLayerTrace.load(path) == trace

    def test_roundtrip_preserves_every_layer_exactly(self, tmp_path):
        trace = make_multilayer_trace(3, 8, 4, small_config(seed=9))
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = MultiLayerTrace.load(path)
        assert (
            loaded.num_layers, loaded.num_steps,
            loaded.num_experts, loaded.num_gpus,
        ) == (3, trace.num_steps, 8, 4)
        for layer in range(3):
            assert loaded.layer(layer) == trace.layer(layer)
        for t in range(trace.num_steps):
            frame = loaded.step(t)
            assert frame.dtype == np.int64
            assert np.array_equal(frame, trace.step(t))

    def test_loaded_trace_is_immutable(self, tmp_path):
        trace = make_multilayer_trace(2, 8, 4, small_config())
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = MultiLayerTrace.load(path)
        with pytest.raises(ValueError):
            loaded.step(0)[0, 0, 0] = 5

    def test_slice_then_roundtrip(self, tmp_path):
        trace = make_multilayer_trace(2, 8, 4, small_config())
        window = trace.slice(1, 3)
        path = tmp_path / "window.npz"
        window.save(path)
        loaded = MultiLayerTrace.load(path)
        assert loaded == window
        assert np.array_equal(loaded.step(0), trace.step(1))

    def test_load_rejects_single_layer_file(self, tmp_path):
        single = make_trace(8, 4, small_config())
        path = tmp_path / "single.npz"
        single.save(path)
        with pytest.raises(RoutingError):
            MultiLayerTrace.load(path)


class TestGenerator:
    def test_deterministic(self):
        a = make_multilayer_trace(3, 8, 4, small_config())
        b = make_multilayer_trace(3, 8, 4, small_config())
        assert a == b

    def test_layers_have_distinct_hot_experts(self):
        trace = make_multilayer_trace(
            4, 16, 4, small_config(num_steps=10), skew=1.5
        )
        hottest = [
            int(np.argmax(trace.layer(l).expert_loads().sum(axis=0)))
            for l in range(4)
        ]
        # Popularity rankings are permuted independently per layer; with
        # 16 experts, four layers sharing one hottest expert would mean
        # the permutation seeding is broken.
        assert len(set(hottest)) >= 2

    def test_layer_zero_matches_single_layer_generator(self):
        config = small_config()
        multi = make_multilayer_trace(2, 8, 4, config)
        single = make_trace(8, 4, config)
        assert multi.layer(0) == single

    def test_rejects_bad_layer_count(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_multilayer_trace(0, 8, 4, small_config())
