"""DeltaStepCost equivalence: incremental == full recompute, always.

The delta evaluator is only allowed to be *faster* than the memoized
reference path, never different: every query shape (rebase, pair sweep,
exchange sweep, trial evaluation) is checked against
:class:`~repro.core.cost_model.MemoizedStepCost` to float tolerance on
noisy and exact profiles, with and without a live cluster state, and the
fallback accounting (the perf smoke's CI gate) is pinned down.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.events import ClusterState
from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, MoEModelConfig
from repro.core.cost_model import MemoizedStepCost, MoECostModel
from repro.core.delta import DeltaStepCost
from repro.core.placement import Placement
from repro.core.primitives import Migrate
from repro.exceptions import RoutingError, SchedulingError

MODEL = MoEModelConfig("delta", num_layers=2, d_model=256, d_ffn=1024, num_experts=8)
CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=4)
RTOL = 1e-9


def build_cost_model(noise: float = 0.02, state: ClusterState | None = None):
    topology = ClusterTopology(CLUSTER)
    profile = Profiler(topology, noise=noise, seed=0).profile(MODEL)
    return MoECostModel(profile, MODEL, cluster_state=state)


def random_placement(rng, slots=4) -> Placement:
    placement = Placement.balanced(8, 8, slots)
    for _ in range(8):
        expert = int(rng.integers(8))
        gpus = placement.gpus_of(expert)
        target = int(rng.integers(8))
        if placement.replicas(expert) > 1 and placement.count(
            expert, gpus[0]
        ) >= 1:
            placement.remove_vexpert(expert, gpus[0])
            placement.add_vexpert(target, gpus[0])
    return placement


@pytest.fixture
def cost_model() -> MoECostModel:
    return build_cost_model()


class TestRebase:
    def test_base_time_matches_reference(self, cost_model, rng):
        memo = MemoizedStepCost(cost_model)
        delta = DeltaStepCost(cost_model)
        for _ in range(20):
            placement = random_placement(rng)
            assignment = rng.integers(0, 30_000, (8, 8))
            base = delta.rebase(assignment, placement)
            assert base == pytest.approx(
                memo.step_time(assignment, placement), rel=RTOL
            )

    def test_shape_mismatch_rejected(self, cost_model):
        delta = DeltaStepCost(cost_model)
        with pytest.raises(RoutingError):
            delta.rebase(np.zeros((4, 4)), Placement.balanced(8, 8, 2))

    def test_negative_tokens_rejected(self, cost_model):
        delta = DeltaStepCost(cost_model)
        assignment = np.zeros((8, 8))
        assignment[0, 0] = -1
        with pytest.raises(RoutingError):
            delta.rebase(assignment, Placement.balanced(8, 8, 2))

    def test_query_without_base_raises(self, cost_model):
        delta = DeltaStepCost(cost_model)
        with pytest.raises(SchedulingError):
            delta.trial_time(Placement.balanced(8, 8, 2), (0,))


class TestPairSweep:
    def test_matches_applying_the_pair(self, cost_model, rng):
        memo = MemoizedStepCost(cost_model)
        delta = DeltaStepCost(cost_model, audit=True)
        for _ in range(10):
            placement = random_placement(rng)
            assignment = rng.integers(0, 30_000, (8, 8))
            delta.rebase(assignment, placement)
            e0, e1 = (int(e) for e in rng.choice(8, 2, replace=False))
            if placement.replicas(e1) <= 1:
                continue
            gpus = np.array(placement.gpus_of(e1))
            times = delta.pair_candidate_times(placement, e0, e1, gpus)
            for i, gpu in enumerate(gpus):
                trial = placement.copy()
                trial.remove_vexpert(e1, int(gpu))
                trial.add_vexpert(e0, int(gpu))
                assert times[i] == pytest.approx(
                    memo.step_time(assignment, trial), rel=RTOL
                )
            assert delta.fallbacks == 0

    def test_same_expert_rejected(self, cost_model, rng):
        delta = DeltaStepCost(cost_model)
        placement = Placement.balanced(8, 8, 4)
        delta.rebase(rng.integers(0, 1000, (8, 8)), placement)
        with pytest.raises(SchedulingError):
            delta.pair_candidate_times(placement, 3, 3, np.array([0]))


class TestExchangeSweep:
    def test_matches_applying_the_exchange(self, cost_model, rng):
        memo = MemoizedStepCost(cost_model)
        delta = DeltaStepCost(cost_model, audit=True)
        for _ in range(10):
            placement = random_placement(rng)
            assignment = rng.integers(0, 30_000, (8, 8))
            delta.rebase(assignment, placement)
            pairs = []
            for _ in range(6):
                ea = int(rng.integers(8))
                holders = placement.gpus_of(ea)
                ga = int(rng.choice(holders))
                gb = int(rng.integers(8))
                if gb == ga:
                    continue
                partners = [e for e in placement.experts_on(gb) if e != ea]
                if not partners:
                    continue
                pairs.append((ea, ga, int(rng.choice(partners)), gb))
            if not pairs:
                continue
            times = delta.exchange_candidate_times(
                placement, np.array(pairs)
            )
            for (ea, ga, eb, gb), time in zip(pairs, times):
                trial = placement.copy()
                Migrate(expert_a=ea, gpu_a=ga, expert_b=eb, gpu_b=gb).apply(
                    trial
                )
                assert time == pytest.approx(
                    memo.step_time(assignment, trial), rel=RTOL
                )
            assert delta.fallbacks == 0


class TestTrialTime:
    def test_matches_reference_through_the_journal(self, cost_model, rng):
        memo = MemoizedStepCost(cost_model)
        delta = DeltaStepCost(cost_model, audit=True)
        placement = random_placement(rng)
        assignment = rng.integers(0, 30_000, (8, 8))
        delta.rebase(assignment, placement)
        checked = 0
        for _ in range(20):
            e0, e1 = (int(e) for e in rng.choice(8, 2, replace=False))
            if placement.replicas(e1) <= 1:
                continue
            gpu = int(rng.choice(placement.gpus_of(e1)))
            with placement.trial() as trial:
                trial.remove_vexpert(e1, gpu)
                trial.add_vexpert(e0, gpu)
                incremental = delta.trial_time(trial, (e0, e1))
                reference = memo.step_time(assignment, trial)
            assert incremental == pytest.approx(reference, rel=RTOL)
            checked += 1
        assert checked > 0
        assert delta.fallbacks == 0

    def test_audit_catches_wrong_changed_set(self, cost_model, rng):
        delta = DeltaStepCost(cost_model, audit=True)
        placement = random_placement(rng)
        assignment = rng.integers(1000, 30_000, (8, 8))
        delta.rebase(assignment, placement)
        e1 = next(e for e in range(8) if placement.replicas(e) > 1)
        e0 = (e1 + 1) % 8
        gpu = placement.gpus_of(e1)[0]
        with placement.trial() as trial:
            trial.remove_vexpert(e1, gpu)
            trial.add_vexpert(e0, gpu)
            with pytest.raises(SchedulingError):
                # Claiming only e0 changed hides e1's mutation.
                delta.trial_time(trial, (e0,))


class TestFallbacks:
    def test_foreign_placement_counts_a_fallback(self, cost_model, rng):
        delta = DeltaStepCost(cost_model)
        placement = Placement.balanced(8, 8, 4)
        other = Placement.balanced(8, 8, 4)
        assignment = rng.integers(0, 10_000, (8, 8))
        delta.rebase(assignment, placement)
        gpus = np.array(other.gpus_of(1))
        delta.pair_candidate_times(other, 0, 1, gpus)
        assert delta.fallbacks == 1

    def test_cluster_state_change_falls_back_correctly(self, rng):
        state = ClusterState(8)
        cost_model = build_cost_model(state=state)
        memo = MemoizedStepCost(cost_model)
        delta = DeltaStepCost(cost_model)
        placement = Placement.balanced(8, 8, 4)
        assignment = rng.integers(0, 10_000, (8, 8))
        delta.rebase(assignment, placement)
        # A straggler appears mid-search: the cached base is stale.
        state.set_speed(3, 0.5)
        e1 = next(e for e in range(8) if placement.replicas(e) > 1)
        e0 = (e1 + 1) % 8
        with placement.trial() as trial:
            gpu = placement.gpus_of(e1)[0]
            trial.remove_vexpert(e1, gpu)
            trial.add_vexpert(e0, gpu)
            stale_safe = delta.trial_time(trial, (e0, e1))
            reference = memo.step_time(assignment, trial)
        assert delta.fallbacks == 1
        assert stale_safe == pytest.approx(reference, rel=RTOL)

    def test_speed_aware_pricing_matches_reference(self, rng):
        state = ClusterState(8)
        state.set_speed(1, 0.5)
        state.fail(2)
        cost_model = build_cost_model(state=state)
        memo = MemoizedStepCost(cost_model)
        delta = DeltaStepCost(cost_model, audit=True)
        placement = Placement.balanced(8, 8, 4)
        assignment = rng.integers(0, 10_000, (8, 8))
        base = delta.rebase(assignment, placement)
        assert base == pytest.approx(
            memo.step_time(assignment, placement), rel=RTOL
        )


EXACT_COST_MODEL = build_cost_model(noise=0.0)
EXACT_MEMO = MemoizedStepCost(EXACT_COST_MODEL)


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(st.integers(0, 50_000), min_size=64, max_size=64),
    slots=st.integers(2, 5),
    e0=st.integers(0, 7),
    e1=st.integers(0, 7),
)
def test_property_pair_sweep_matches_full_evaluation(data, slots, e0, e1):
    """Every (Shrink, Expand) candidate's delta time equals the full path."""
    if e0 == e1:
        return
    assignment = np.array(data, dtype=np.int64).reshape(8, 8)
    placement = Placement.balanced(8, 8, slots)
    if placement.replicas(e1) <= 1:
        return
    delta = DeltaStepCost(EXACT_COST_MODEL)
    delta.rebase(assignment, placement)
    gpus = np.array(placement.gpus_of(e1))
    times = delta.pair_candidate_times(placement, e0, e1, gpus)
    for i, gpu in enumerate(gpus):
        trial = placement.copy()
        trial.remove_vexpert(e1, int(gpu))
        trial.add_vexpert(e0, int(gpu))
        full = EXACT_MEMO.step_time(assignment, trial)
        assert times[i] == pytest.approx(full, rel=RTOL)
