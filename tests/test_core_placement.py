"""Unit tests for the Placement / vExpert model."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.exceptions import PlacementError


class TestBalancedConstruction:
    def test_all_slots_used(self):
        p = Placement.balanced(8, 4, 2)
        assert p.counts.sum() == 8
        assert all(p.used_slots(g) == 2 for g in range(4))

    def test_every_expert_has_replica(self):
        p = Placement.balanced(5, 4, 2)
        assert (p.replica_counts() >= 1).all()

    def test_extra_slots_spread_over_experts(self):
        p = Placement.balanced(4, 4, 2)  # 8 slots for 4 experts
        assert sorted(p.replica_counts()) == [2, 2, 2, 2]

    def test_replicas_striped_over_distinct_gpus(self):
        p = Placement.balanced(2, 4, 1)  # 4 slots, 2 experts, 2 each
        for e in range(2):
            assert len(p.gpus_of(e)) == p.replicas(e)

    def test_insufficient_slots_rejected(self):
        with pytest.raises(PlacementError):
            Placement.balanced(10, 4, 2)


class TestExpertParallelConstruction:
    def test_striped_one_deep(self):
        p = Placement.expert_parallel(8, 4)
        assert (p.replica_counts() == 1).all()
        assert p.used_slots(0) == 2

    def test_fewer_experts_than_gpus(self):
        p = Placement.expert_parallel(2, 4)
        assert p.replicas(0) == 1
        assert p.used_slots(3) == 0


class TestInvariants:
    def test_rejects_orphan_expert(self):
        counts = np.zeros((2, 2), dtype=np.int64)
        counts[0, 0] = 2
        with pytest.raises(PlacementError):
            Placement(counts, 2)

    def test_rejects_over_capacity_gpu(self):
        counts = np.array([[3], [1]], dtype=np.int64)
        with pytest.raises(PlacementError):
            Placement(counts, 2)

    def test_rejects_negative_counts(self):
        counts = np.array([[-1, 2], [1, 1]], dtype=np.int64)
        with pytest.raises(PlacementError):
            Placement(counts, 4)

    def test_rejects_float_counts(self):
        with pytest.raises(PlacementError):
            Placement(np.ones((2, 2)) * 0.5, 2)


class TestMutations:
    def test_add_and_remove(self):
        p = Placement.balanced(4, 4, 2)
        before = p.replicas(0)
        gpu = next(g for g in range(4) if p.free_slots(g) > 0) if any(
            p.free_slots(g) for g in range(4)
        ) else None
        # All slots full: remove one first.
        victim_gpu = p.gpus_of(1)[0]
        p.remove_vexpert(1, victim_gpu)
        p.add_vexpert(0, victim_gpu)
        assert p.replicas(0) == before + 1

    def test_remove_last_replica_rejected(self):
        p = Placement.expert_parallel(4, 4)
        with pytest.raises(PlacementError):
            p.remove_vexpert(0, 0)

    def test_add_to_full_gpu_rejected(self):
        p = Placement.balanced(8, 4, 2)
        with pytest.raises(PlacementError):
            p.add_vexpert(0, 0)

    def test_move_vexpert(self):
        p = Placement.expert_parallel(2, 4)  # gpus 2, 3 empty
        p.move_vexpert(0, 0, 2)
        assert p.count(0, 2) == 1
        assert p.count(0, 0) == 0

    def test_move_same_gpu_rejected(self):
        p = Placement.expert_parallel(2, 4)
        with pytest.raises(PlacementError):
            p.move_vexpert(0, 0, 0)

    def test_swap_vexperts(self):
        p = Placement.expert_parallel(4, 2)  # e0,e2 on g0; e1,e3 on g1
        p.swap_vexperts(0, 0, 1, 1)
        assert p.count(0, 1) == 1
        assert p.count(1, 0) == 1
        p.validate()

    def test_swap_missing_replica_rejected(self):
        p = Placement.expert_parallel(4, 2)
        with pytest.raises(PlacementError):
            p.swap_vexperts(0, 1, 1, 0)


class TestQueries:
    def test_replica_groups(self):
        p = Placement.balanced(2, 4, 1)
        groups = p.replica_groups()
        assert set(groups) == {0, 1}
        assert all(len(g) == 2 for g in groups.values())

    def test_memory_counts_distinct_experts(self):
        counts = np.array([[2, 0], [0, 1], [0, 1]], dtype=np.int64)
        p = Placement(counts, 2)
        mem = p.memory_bytes_per_gpu(100)
        assert mem[0] == 100  # packed replicas share weights
        assert mem[1] == 200

    def test_copy_is_independent(self):
        p = Placement.balanced(4, 4, 2)
        q = p.copy()
        victim = q.gpus_of(0)[0]
        q.remove_vexpert(0, victim)
        assert p.replicas(0) != q.replicas(0) or p.count(0, victim) != q.count(0, victim)

    def test_signature_changes_on_mutation(self):
        p = Placement.balanced(4, 4, 2)
        sig = p.signature()
        p.remove_vexpert(0, p.gpus_of(0)[0])
        assert p.signature() != sig

    def test_equality(self):
        assert Placement.balanced(4, 4, 2) == Placement.balanced(4, 4, 2)

    def test_out_of_range_rejected(self):
        p = Placement.balanced(4, 4, 2)
        with pytest.raises(PlacementError):
            p.replicas(7)
        with pytest.raises(PlacementError):
            p.used_slots(9)
