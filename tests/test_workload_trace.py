"""Unit tests for the RoutingTrace container."""

import numpy as np
import pytest

from repro.exceptions import RoutingError
from repro.workload.trace import RoutingTrace


def make_trace(steps=3, experts=4, gpus=2, seed=0):
    rng = np.random.default_rng(seed)
    return RoutingTrace(rng.integers(0, 100, (steps, experts, gpus)))


class TestRoutingTrace:
    def test_shape_accessors(self):
        trace = make_trace()
        assert (trace.num_steps, trace.num_experts, trace.num_gpus) == (3, 4, 2)
        assert len(trace) == 3

    def test_step_access_and_iteration(self):
        trace = make_trace()
        frames = list(trace)
        assert len(frames) == 3
        assert np.array_equal(frames[1], trace.step(1))

    def test_step_out_of_range(self):
        with pytest.raises(RoutingError):
            make_trace().step(3)

    def test_expert_loads(self):
        trace = make_trace()
        assert trace.expert_loads(0).shape == (4,)
        assert trace.expert_loads().shape == (3, 4)
        assert trace.expert_loads(1).sum() == trace.step(1).sum()

    def test_tokens_per_step(self):
        trace = make_trace()
        assert np.array_equal(
            trace.tokens_per_step(),
            np.array([trace.step(t).sum() for t in range(3)]),
        )

    def test_slice(self):
        trace = make_trace(steps=5)
        sub = trace.slice(1, 4)
        assert sub.num_steps == 3
        assert np.array_equal(sub.step(0), trace.step(1))

    def test_slice_invalid(self):
        with pytest.raises(RoutingError):
            make_trace().slice(2, 1)

    def test_rejects_negative_counts(self):
        with pytest.raises(RoutingError):
            RoutingTrace(np.array([[[-1]]]))

    def test_rejects_non_integral(self):
        with pytest.raises(RoutingError):
            RoutingTrace(np.array([[[0.5]]]))

    def test_accepts_integral_floats(self):
        trace = RoutingTrace(np.array([[[2.0]]]))
        assert trace.step(0)[0, 0] == 2

    def test_immutability(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            trace.step(0)[0, 0] = 5

    def test_roundtrip_save_load(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert RoutingTrace.load(path) == trace

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(RoutingError):
            RoutingTrace.load(path)

    def test_equality(self):
        assert make_trace(seed=1) == make_trace(seed=1)
        assert make_trace(seed=1) != make_trace(seed=2)
