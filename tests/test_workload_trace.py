"""Unit tests for the RoutingTrace container."""

import numpy as np
import pytest

from repro.exceptions import RoutingError
from repro.workload.trace import RoutingTrace


def make_trace(steps=3, experts=4, gpus=2, seed=0):
    rng = np.random.default_rng(seed)
    return RoutingTrace(rng.integers(0, 100, (steps, experts, gpus)))


class TestRoutingTrace:
    def test_shape_accessors(self):
        trace = make_trace()
        assert (trace.num_steps, trace.num_experts, trace.num_gpus) == (3, 4, 2)
        assert len(trace) == 3

    def test_step_access_and_iteration(self):
        trace = make_trace()
        frames = list(trace)
        assert len(frames) == 3
        assert np.array_equal(frames[1], trace.step(1))

    def test_step_out_of_range(self):
        with pytest.raises(RoutingError):
            make_trace().step(3)

    def test_expert_loads(self):
        trace = make_trace()
        assert trace.expert_loads(0).shape == (4,)
        assert trace.expert_loads().shape == (3, 4)
        assert trace.expert_loads(1).sum() == trace.step(1).sum()

    def test_tokens_per_step(self):
        trace = make_trace()
        assert np.array_equal(
            trace.tokens_per_step(),
            np.array([trace.step(t).sum() for t in range(3)]),
        )

    def test_slice(self):
        trace = make_trace(steps=5)
        sub = trace.slice(1, 4)
        assert sub.num_steps == 3
        assert np.array_equal(sub.step(0), trace.step(1))

    def test_slice_invalid(self):
        with pytest.raises(RoutingError):
            make_trace().slice(2, 1)

    def test_rejects_negative_counts(self):
        with pytest.raises(RoutingError):
            RoutingTrace(np.array([[[-1]]]))

    def test_rejects_non_integral(self):
        with pytest.raises(RoutingError):
            RoutingTrace(np.array([[[0.5]]]))

    def test_accepts_integral_floats(self):
        trace = RoutingTrace(np.array([[[2.0]]]))
        assert trace.step(0)[0, 0] == 2

    def test_immutability(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            trace.step(0)[0, 0] = 5

    def test_roundtrip_save_load(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert RoutingTrace.load(path) == trace

    def test_roundtrip_preserves_shape_dtype_and_values(self, tmp_path):
        trace = make_trace(steps=5, experts=6, gpus=3, seed=7)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RoutingTrace.load(path)
        assert (loaded.num_steps, loaded.num_experts, loaded.num_gpus) == (
            5, 6, 3,
        )
        for t in range(5):
            frame = loaded.step(t)
            assert frame.dtype == np.int64
            assert np.array_equal(frame, trace.step(t))

    def test_roundtrip_of_integral_float_input(self, tmp_path):
        trace = RoutingTrace(np.array([[[2.0, 3.0], [0.0, 1.0]]]))
        path = tmp_path / "float.npz"
        trace.save(path)
        loaded = RoutingTrace.load(path)
        assert loaded == trace
        assert loaded.step(0).dtype == np.int64

    def test_loaded_trace_is_immutable(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RoutingTrace.load(path)
        with pytest.raises(ValueError):
            loaded.step(0)[0, 0] = 5

    def test_slice_then_roundtrip(self, tmp_path):
        trace = make_trace(steps=6)
        window = trace.slice(2, 5)
        path = tmp_path / "window.npz"
        window.save(path)
        loaded = RoutingTrace.load(path)
        assert loaded == window
        assert np.array_equal(loaded.step(0), trace.step(2))

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(RoutingError):
            RoutingTrace.load(path)

    def test_load_rejects_multilayer_file(self, tmp_path):
        from repro.workload.trace import MultiLayerTrace

        rng = np.random.default_rng(0)
        multi = MultiLayerTrace(rng.integers(0, 10, (2, 3, 4, 2)))
        path = tmp_path / "multi.npz"
        multi.save(path)
        with pytest.raises(RoutingError):
            RoutingTrace.load(path)

    def test_equality(self):
        assert make_trace(seed=1) == make_trace(seed=1)
        assert make_trace(seed=1) != make_trace(seed=2)
