"""Property-based tests: scheduler / balance / SWIPE invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.expert_parallel import apply_capacity
from repro.baselines.swipe import rebalance_strict
from repro.core.balance import balance_ratio, gpu_loads_even_split
from repro.core.placement import Placement


def small_assignments(num_experts=8, num_gpus=4, max_tokens=3000):
    return st.lists(
        st.integers(0, max_tokens),
        min_size=num_experts * num_gpus,
        max_size=num_experts * num_gpus,
    ).map(lambda f: np.array(f, dtype=np.int64).reshape(num_experts, num_gpus))


@settings(max_examples=80, deadline=None)
@given(assignment=small_assignments())
def test_balance_ratio_at_least_one(assignment):
    placement = Placement.balanced(8, 4, 2)
    loads = gpu_loads_even_split(assignment, placement)
    assert balance_ratio(loads) >= 1.0 - 1e-12


@settings(max_examples=80, deadline=None)
@given(assignment=small_assignments(), capacity=st.integers(1, 5000))
def test_capacity_truncation_bounds_every_expert(assignment, capacity):
    capped, dropped = apply_capacity(assignment, capacity)
    assert (capped.sum(axis=1) <= capacity).all()
    assert (capped >= 0).all()
    assert (capped <= assignment).all()
    assert dropped == assignment.sum() - capped.sum()


@settings(max_examples=80, deadline=None)
@given(assignment=small_assignments())
def test_swipe_conserves_totals_and_balances(assignment):
    balanced, diverted = rebalance_strict(assignment)
    # Token conservation: global and per source GPU.
    assert balanced.sum() == assignment.sum()
    np.testing.assert_array_equal(
        balanced.sum(axis=0), assignment.sum(axis=0)
    )
    # Strict balance: expert totals within 1 token.
    totals = balanced.sum(axis=1)
    if assignment.sum() > 0:
        assert totals.max() - totals.min() <= 1
    # Diversion accounting is non-negative and bounded.
    assert 0 <= diverted <= assignment.sum()


@settings(max_examples=40, deadline=None)
@given(
    assignment=small_assignments(),
    seed=st.integers(0, 1000),
)
def test_even_split_loads_sum_to_total(assignment, seed):
    rng = np.random.default_rng(seed)
    placement = Placement.balanced(8, 4, 2)
    # random placement walk
    for _ in range(5):
        e = int(rng.integers(0, 8))
        victim = int(rng.integers(0, 8))
        if victim == e:
            continue
        gpus = placement.gpus_of(victim)
        if placement.replicas(victim) > 1:
            g = int(rng.choice(gpus))
            placement.remove_vexpert(victim, g)
            placement.add_vexpert(e, g)
    loads = gpu_loads_even_split(assignment, placement)
    assert loads.sum() == pytest.approx(assignment.sum())
