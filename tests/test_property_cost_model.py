"""Property-based tests: cost-model invariants (Eqs. 5, 7-9)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, MoEModelConfig
from repro.core.cost_model import MoECostModel
from repro.core.placement import Placement
from repro.core.router import FlexibleTokenRouter


def build_cost_model(seed: int = 0) -> tuple[MoECostModel, Placement]:
    cluster = ClusterConfig(num_nodes=2, gpus_per_node=4)
    model = MoEModelConfig("prop", 2, 128, 512, 8)
    topo = ClusterTopology(cluster)
    profile = Profiler(topo, noise=0.0, seed=seed).profile(model)
    return MoECostModel(profile, model), Placement.balanced(8, 8, 2)


COST_MODEL, PLACEMENT = build_cost_model()
ROUTER = FlexibleTokenRouter()


def assignments(max_tokens=20_000):
    return st.lists(
        st.integers(0, max_tokens), min_size=64, max_size=64
    ).map(lambda f: np.array(f, dtype=np.int64).reshape(8, 8))


@settings(max_examples=50, deadline=None)
@given(assignment=assignments())
def test_step_time_non_negative_and_max_of_gpus(assignment):
    plan = ROUTER.route(assignment, PLACEMENT)
    breakdown = COST_MODEL.step_breakdown(plan.routes, PLACEMENT)
    assert breakdown.step_time >= 0
    assert breakdown.step_time == pytest.approx(
        breakdown.per_gpu_total.max()
    )
    assert (breakdown.compute >= 0).all()
    assert (breakdown.all_to_all >= 0).all()
    assert (breakdown.sync >= 0).all()


@settings(max_examples=50, deadline=None)
@given(assignment=assignments(), scale=st.integers(2, 5))
def test_cost_monotone_in_token_scale(assignment, scale):
    """Scaling every token count up never reduces the modelled time."""
    plan_small = ROUTER.route(assignment, PLACEMENT)
    plan_large = ROUTER.route(assignment * scale, PLACEMENT)
    t_small = COST_MODEL.step_time(plan_small.routes, PLACEMENT)
    t_large = COST_MODEL.step_time(plan_large.routes, PLACEMENT)
    assert t_large >= t_small - 1e-12


@settings(max_examples=50, deadline=None)
@given(assignment=assignments())
def test_utilization_bounded(assignment):
    plan = ROUTER.route(assignment, PLACEMENT)
    breakdown = COST_MODEL.step_breakdown(plan.routes, PLACEMENT)
    assert 0.0 <= breakdown.compute_utilization <= 1.0


@settings(max_examples=30, deadline=None)
@given(assignment=assignments())
def test_fractional_and_integer_costs_agree(assignment):
    """The relaxation used for candidate search tracks the integer cost."""
    integer = ROUTER.route(assignment, PLACEMENT)
    frac = ROUTER.route_fractional(assignment, PLACEMENT)
    t_int = COST_MODEL.step_time(integer.routes, PLACEMENT)
    t_frac = COST_MODEL.step_time(frac, PLACEMENT)
    if t_int > 1e-9:
        assert t_frac == pytest.approx(t_int, rel=0.05)


@settings(max_examples=30, deadline=None)
@given(
    assignment=assignments(),
    expert=st.integers(0, 7),
)
def test_replication_never_hurts_compute_balance(assignment, expert):
    """Adding a replica of any expert cannot worsen even-split imbalance."""
    from repro.core.balance import balance_ratio, gpu_loads_even_split

    before = balance_ratio(gpu_loads_even_split(assignment, PLACEMENT))
    trial = PLACEMENT.copy()
    # free a slot from the least-loaded expert that can spare one
    loads = assignment.sum(axis=1)
    donors = [
        e for e in np.argsort(loads) if trial.replicas(int(e)) > 1
        and int(e) != expert
    ]
    if not donors:
        return
    donor = int(donors[0])
    gpu = trial.gpus_of(donor)[0]
    trial.remove_vexpert(donor, gpu)
    trial.add_vexpert(expert, gpu)
    # The *hottest* expert gaining a replica must improve or hold balance.
    if expert == int(np.argmax(loads)) and donor != expert:
        after = balance_ratio(gpu_loads_even_split(assignment, trial))
        # donor loss can shift load, so allow small tolerance
        assert after <= before * 1.5
