"""Unit tests for configuration dataclasses and validation."""

import pytest

from repro.config import (
    ClusterConfig,
    DeviceSpec,
    MoEModelConfig,
    SchedulerConfig,
    WorkloadConfig,
    WIRE_BYTES_PER_ELEMENT,
)
from repro.exceptions import ConfigurationError


def make_model(**overrides):
    base = dict(
        name="m", num_layers=2, d_model=16, d_ffn=64, num_experts=4
    )
    base.update(overrides)
    return MoEModelConfig(**base)


class TestMoEModelConfig:
    def test_expert_params_counts_both_matrices_and_biases(self):
        m = make_model()
        assert m.expert_params == 2 * 16 * 64 + 64 + 16

    def test_expert_bytes_uses_wire_precision(self):
        m = make_model()
        assert m.expert_bytes == m.expert_params * WIRE_BYTES_PER_ELEMENT

    def test_state_bytes_include_adam_moments(self):
        m = make_model()
        assert m.expert_state_bytes == m.expert_params * 4 * 4

    def test_token_bytes(self):
        assert make_model().token_bytes == 16 * WIRE_BYTES_PER_ELEMENT

    def test_flops_per_token_positive(self):
        assert make_model().flops_per_token > 0

    def test_rejects_bad_topk(self):
        with pytest.raises(ConfigurationError):
            make_model(top_k=5)
        with pytest.raises(ConfigurationError):
            make_model(top_k=0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            make_model(capacity_factor=0.0)

    def test_none_capacity_allowed(self):
        assert make_model(capacity_factor=None).capacity_factor is None

    def test_replace_returns_modified_copy(self):
        m = make_model()
        m2 = m.replace(num_experts=8)
        assert m2.num_experts == 8
        assert m.num_experts == 4

    def test_rejects_negative_balance_coef(self):
        with pytest.raises(ConfigurationError):
            make_model(balance_loss_coef=-0.1)


class TestDeviceSpec:
    def test_effective_flops(self):
        spec = DeviceSpec(peak_flops=100.0, mfu=0.5)
        assert spec.effective_flops == 50.0

    def test_tokens_per_second_scales_inverse_with_flops_per_token(self):
        spec = DeviceSpec()
        small = make_model(d_model=16)
        large = make_model(d_model=32)
        assert spec.tokens_per_second(small) > spec.tokens_per_second(large)

    def test_rejects_bad_mfu(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(mfu=0.0)
        with pytest.raises(ConfigurationError):
            DeviceSpec(mfu=1.5)


class TestClusterConfig:
    def test_num_gpus(self):
        assert ClusterConfig(num_nodes=3, gpus_per_node=4).num_gpus == 12

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_nodes=0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(intra_node_bandwidth=0)

    def test_replace(self):
        c = ClusterConfig().replace(num_nodes=2)
        assert c.num_nodes == 2


class TestWorkloadConfig:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_rejects_zero_tokens(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(tokens_per_step=0)

    def test_rejects_negative_final_skew(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(final_skew=-1.0)

    def test_final_skew_none_ok(self):
        assert WorkloadConfig(final_skew=None).final_skew is None


class TestSchedulerConfig:
    def test_defaults_valid(self):
        cfg = SchedulerConfig()
        assert cfg.metric == "max"
        assert cfg.mode == "dynamic"

    def test_rejects_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(metric="median")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(mode="sometimes")

    def test_rejects_threshold_below_one(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(balance_threshold=0.9)

    def test_rejects_zero_slots(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(slots_per_gpu=0)
