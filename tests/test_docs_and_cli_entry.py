"""Docs conventions and README quickstart drift, as a tier-1 guard.

CI runs ``tools/check_docs.py`` standalone; this test keeps the same
guarantees inside the tier-1 suite so drift is caught locally too.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_encoding_conventions():
    check = load_check_docs()
    problems = []
    for path in check.doc_paths():
        problems.extend(check.check_encoding(path))
    assert problems == []


def test_readme_quickstart_runs():
    check = load_check_docs()
    assert check.check_quickstart(REPO / "README.md") == []


def test_module_entry_point():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0
    for command in ("run", "bench", "compare"):
        assert command in result.stdout
