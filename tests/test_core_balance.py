"""Unit tests for the balance metrics (Eq. 6 and variance ablation)."""

import numpy as np
import pytest

from repro.core.balance import (
    balance_ratio,
    gpu_loads_even_split,
    gpu_loads_from_routes,
    metric_threshold_exceeded,
    metric_value,
    variance_ratio,
)
from repro.core.placement import Placement
from repro.exceptions import RoutingError


class TestBalanceRatio:
    def test_balanced_is_one(self):
        assert balance_ratio(np.array([5.0, 5.0, 5.0])) == 1.0

    def test_empty_loads_is_one(self):
        assert balance_ratio(np.zeros(4)) == 1.0

    def test_straggler_dominates(self):
        assert balance_ratio(np.array([1.0, 1.0, 10.0])) == pytest.approx(2.5)

    def test_always_at_least_one(self, rng):
        for _ in range(20):
            loads = rng.integers(0, 100, 8).astype(float)
            if loads.sum() == 0:
                continue
            assert balance_ratio(loads) >= 1.0

    def test_rejects_negative(self):
        with pytest.raises(RoutingError):
            balance_ratio(np.array([-1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(RoutingError):
            balance_ratio(np.array([]))


class TestVarianceRatio:
    def test_balanced_is_zero(self):
        assert variance_ratio(np.array([3.0, 3.0])) == 0.0

    def test_scale_free(self):
        a = variance_ratio(np.array([1.0, 3.0]))
        b = variance_ratio(np.array([100.0, 300.0]))
        assert a == pytest.approx(b)

    def test_zero_loads(self):
        assert variance_ratio(np.zeros(3)) == 0.0


class TestMetricDispatch:
    def test_dispatch(self):
        loads = np.array([1.0, 3.0])
        assert metric_value("max", loads) == balance_ratio(loads)
        assert metric_value("variance", loads) == variance_ratio(loads)

    def test_unknown_metric(self):
        with pytest.raises(RoutingError):
            metric_value("p99", np.ones(2))

    def test_threshold_semantics(self):
        assert metric_threshold_exceeded("max", 1.3, 1.2)
        assert not metric_threshold_exceeded("max", 1.1, 1.2)
        # variance uses threshold - 1 so one knob serves both metrics
        assert metric_threshold_exceeded("variance", 0.3, 1.2)
        assert not metric_threshold_exceeded("variance", 0.1, 1.2)


class TestLoadDerivations:
    def test_loads_from_routes(self):
        routes = np.zeros((2, 2, 2), dtype=np.int64)
        routes[0, 0, 1] = 5
        routes[1, 1, 1] = 3
        assert np.array_equal(gpu_loads_from_routes(routes), [0, 8])

    def test_even_split_respects_replica_shares(self):
        placement = Placement.balanced(2, 4, 1)  # each expert on 2 GPUs
        assignment = np.array([[8, 0, 0, 0], [0, 0, 0, 4]])
        loads = gpu_loads_even_split(assignment, placement)
        # expert 0 has 8 tokens over 2 replicas -> 4 each; expert 1: 2 each
        assert sorted(loads.tolist()) == [2.0, 2.0, 4.0, 4.0]

    def test_even_split_shape_validation(self, placement):
        with pytest.raises(RoutingError):
            gpu_loads_even_split(np.zeros(3), placement)
