"""Trial journal, version counter and signature caching on Placement."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.primitives import Expand, Migrate, Shrink
from repro.exceptions import PlacementError


@pytest.fixture
def placement() -> Placement:
    # Striped layout with free slots on every GPU (Placement.balanced
    # binds all slots, which would make Expand impossible to exercise).
    counts = np.zeros((8, 4), dtype=np.int64)
    for expert in range(8):
        counts[expert, expert % 4] = 1
    counts[0, 1] += 1  # replicated experts for Shrink/Migrate tests
    counts[1, 2] += 1
    return Placement(counts, slots_per_gpu=4)


class TestVersionAndSignature:
    def test_version_bumps_on_every_mutation(self, placement):
        v0 = placement.version
        placement.add_vexpert(0, placement.gpus_of(0)[0])
        assert placement.version == v0 + 1
        placement.remove_vexpert(0, placement.gpus_of(0)[0])
        assert placement.version == v0 + 2

    def test_failed_mutation_does_not_bump(self, placement):
        v0 = placement.version
        with pytest.raises(PlacementError):
            placement.remove_vexpert(0, 99)
        assert placement.version == v0

    def test_signature_cached_and_invalidated(self, placement):
        sig = placement.signature()
        assert placement.signature() is sig  # cached object, no re-tobytes
        placement.add_vexpert(1, placement.gpus_of(1)[0])
        assert placement.signature() != sig
        assert placement.signature() == placement.counts.tobytes()

    def test_copy_preserves_signature_and_resets_version(self, placement):
        placement.add_vexpert(0, placement.gpus_of(0)[0])
        sig = placement.signature()
        clone = placement.copy()
        assert clone.signature() == sig
        assert clone.version == 0
        clone.add_vexpert(1, clone.gpus_of(1)[0])
        assert placement.signature() == sig  # clone mutations do not leak

    def test_counts_view_is_read_only_and_live(self, placement):
        view = placement.counts_view
        with pytest.raises(ValueError):
            view[0, 0] = 5
        gpu = placement.gpus_of(0)[0]
        before = view[0, gpu]
        placement.add_vexpert(0, gpu)
        assert view[0, gpu] == before + 1  # view tracks the live matrix

    def test_row_returns_copy(self, placement):
        row = placement.row(0)
        row[:] = 0
        assert placement.replicas(0) > 0


class TestTrialJournal:
    def test_rollback_restores_counts_version_signature(self, placement):
        counts = placement.counts
        sig = placement.signature()
        version = placement.version
        token = placement.begin_trial()
        placement.remove_vexpert(0, placement.gpus_of(0)[0])
        placement.add_vexpert(1, placement.gpus_of(1)[0])
        placement.rollback(token)
        assert np.array_equal(placement.counts, counts)
        assert placement.signature() == sig
        assert placement.version == version

    def test_trial_context_manager_always_rolls_back(self, placement):
        counts = placement.counts
        with placement.trial() as trial:
            assert trial is placement
            Shrink(expert=0, gpu=placement.gpus_of(0)[0]).apply(trial)
        assert np.array_equal(placement.counts, counts)

    def test_trial_rolls_back_on_exception(self, placement):
        counts = placement.counts
        with pytest.raises(RuntimeError):
            with placement.trial():
                placement.remove_vexpert(0, placement.gpus_of(0)[0])
                raise RuntimeError("search aborted")
        assert np.array_equal(placement.counts, counts)

    def test_partial_action_failure_rolls_back_cleanly(self, placement):
        counts = placement.counts
        with placement.trial() as trial:
            gpu = placement.gpus_of(0)[0]
            Shrink(expert=0, gpu=gpu).apply(trial)
            with pytest.raises(PlacementError):
                # Source GPU holds no replica of expert 1: Expand refuses.
                Expand(expert=1, gpu=gpu, source_gpu=99).apply(trial)
        assert np.array_equal(placement.counts, counts)

    def test_nested_trials(self, placement):
        counts = placement.counts
        outer = placement.begin_trial()
        placement.add_vexpert(0, placement.gpus_of(0)[0])
        mid = placement.counts
        inner = placement.begin_trial()
        placement.add_vexpert(1, placement.gpus_of(1)[0])
        placement.rollback(inner)
        assert np.array_equal(placement.counts, mid)
        placement.rollback(outer)
        assert np.array_equal(placement.counts, counts)

    def test_rollback_without_trial_raises(self, placement):
        with pytest.raises(PlacementError):
            placement.rollback((0, 0))

    def test_migrate_round_trips_through_journal(self, placement):
        counts = placement.counts
        gpu_a = placement.gpus_of(0)[0]
        partner_gpu = next(
            g for g in range(placement.num_gpus)
            if g != gpu_a and placement.experts_on(g)
        )
        partner = next(
            e for e in placement.experts_on(partner_gpu) if e != 0
        )
        with placement.trial() as trial:
            Migrate(
                expert_a=0, gpu_a=gpu_a,
                expert_b=partner, gpu_b=partner_gpu,
            ).apply(trial)
            assert not np.array_equal(trial.counts, counts)
        assert np.array_equal(placement.counts, counts)

    def test_mutations_after_rollback_are_clean(self, placement):
        token = placement.begin_trial()
        placement.add_vexpert(0, placement.gpus_of(0)[0])
        placement.rollback(token)
        # Journal closed: normal mutations must not try to journal.
        placement.add_vexpert(2, placement.gpus_of(2)[0])
        placement.validate()
