"""Focused tests for skew annealing and locality bias in the generator."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.workload.synthetic import DriftingRoutingGenerator, top_share


class TestSkewAnnealing:
    def test_constant_skew_without_final(self):
        cfg = WorkloadConfig(
            tokens_per_step=200_000, num_steps=80, skew=1.3, drift=0.0,
            renewal_period=10_000, seed=2,
        )
        gen = DriftingRoutingGenerator(32, 4, cfg)
        trace = gen.generate()
        early_loads = trace.expert_loads(5).astype(float)
        late_loads = trace.expert_loads(75).astype(float)
        early = top_share(early_loads / early_loads.sum(), 5)
        late = top_share(late_loads / late_loads.sum(), 5)
        assert late == pytest.approx(early, abs=0.1)

    def test_anneal_toward_uniform(self):
        cfg = WorkloadConfig(
            tokens_per_step=200_000, num_steps=80, skew=1.3, final_skew=0.0,
            drift=0.0, renewal_period=10_000, seed=2,
        )
        gen = DriftingRoutingGenerator(32, 4, cfg)
        trace = gen.generate()
        late = trace.expert_loads(79).astype(float)
        late_share = top_share(late / late.sum(), 5)
        # Uniform over 32 experts: top-5 share ~ 5/32 = 0.156.
        assert late_share < 0.35

    def test_anneal_upward_also_works(self):
        cfg = WorkloadConfig(
            tokens_per_step=200_000, num_steps=60, skew=0.5, final_skew=2.0,
            drift=0.0, renewal_period=10_000, seed=2,
        )
        gen = DriftingRoutingGenerator(16, 4, cfg)
        trace = gen.generate()
        early = top_share(trace.expert_loads(2).astype(float), 2)
        late = top_share(trace.expert_loads(59).astype(float), 2)
        assert late > early


class TestLocalityBias:
    def test_bias_concentrates_gpu_preferences(self):
        base_cfg = WorkloadConfig(
            tokens_per_step=400_000, num_steps=5, skew=0.0, seed=4
        )
        plain = DriftingRoutingGenerator(32, 4, base_cfg)
        biased = DriftingRoutingGenerator(
            32, 4, base_cfg, locality_bias=0.8
        )
        frame_plain = plain.next_step()
        frame_biased = biased.next_step()
        # Per-GPU concentration (max expert share per column).
        conc_plain = (frame_plain.max(axis=0) / frame_plain.sum(axis=0)).mean()
        conc_biased = (
            frame_biased.max(axis=0) / frame_biased.sum(axis=0)
        ).mean()
        assert conc_biased > conc_plain

    def test_bias_preserves_totals(self):
        cfg = WorkloadConfig(tokens_per_step=100_000, num_steps=3, seed=4)
        gen = DriftingRoutingGenerator(16, 4, cfg, locality_bias=0.5)
        assert gen.next_step().sum() == 100_000
