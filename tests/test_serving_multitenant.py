"""Multi-tenant serving: SLO classes, priority admission, preemption.

The ISSUE-7 invariant layer. Two Hypothesis properties pin the
admission core:

* **conservation** -- across any interleaving of offers, dispatches and
  preemption requeues, every admitted request is either dispatched or
  still queued: nothing is lost, duplicated, or silently dropped;
* **priority ordering** -- a dispatched batch never contains a
  lower-priority request while a dispatchable higher-priority request
  (within its per-batch quota and the remaining batch budget) was
  queued, and requests of one tenant always dispatch in FIFO order.

Around them: config validation, weighted-fair/stride selection,
two-level backpressure, preemption semantics of
:class:`~repro.sim.sources.MultiTenantServingSource` (generation-stale
completions, requeue-at-front, credit refund), per-class/fairness
reporting, and the eager-admission default the multi-tenant path
requires (see docs/serving.md).
"""

import inspect
from collections import Counter, defaultdict, deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.serving.admission import (
    ADMISSION_POLICIES,
    BatchingConfig,
    PriorityAdmissionQueue,
)
from repro.serving.engine import ServingEngine
from repro.serving.requests import (
    Request,
    RequestStreamConfig,
    TenantSpec,
    merge_tenant_requests,
)
from repro.serving.slo import (
    RequestRecord,
    ServingReport,
    SLOConfig,
    TenancyInfo,
    TenantClass,
)
from repro.sim import MultiTenantServingSource, Scenario, ServingSource

SLO = SLOConfig(latency_target=1.0)
INTERACTIVE = TenantClass("interactive", SLO, priority=10, preemptible=False)
BATCH = TenantClass("batch", SLOConfig(latency_target=5.0), priority=0)


def stream_config(rate=10.0, n=4, seed=0):
    return RequestStreamConfig(
        arrival="poisson", rate_rps=rate, num_requests=n, mean_tokens=64,
        max_tokens=256, seed=seed,
    )


def spec(name="t", tenant_class=BATCH, weight=1.0, quota=None, limit=None,
         **stream_kwargs):
    return TenantSpec(
        name=name,
        stream=stream_config(**stream_kwargs),
        tenant_class=tenant_class,
        weight=weight,
        quota_tokens=quota,
        max_queue_tokens=limit,
    )


def request(index, tokens, tenant=0, arrival=0.0, topic=0):
    return Request(
        index=index, arrival=arrival, tokens=tokens, topic=topic,
        tenant=tenant,
    )


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
class TestTenantConfig:
    def test_tenant_class_validation(self):
        with pytest.raises(ConfigurationError):
            TenantClass("", SLO)

    def test_tenant_spec_validation(self):
        with pytest.raises(ConfigurationError):
            spec(name="")
        with pytest.raises(ConfigurationError):
            spec(weight=0.0)
        with pytest.raises(ConfigurationError):
            spec(quota=0)
        with pytest.raises(ConfigurationError):
            spec(limit=0)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="x", stream=stream_config(), tenant_class=object())

    def test_request_tenant_validation(self):
        with pytest.raises(ConfigurationError):
            request(0, 10, tenant=-1)

    def test_tenancy_info_validation(self):
        with pytest.raises(ConfigurationError):
            TenancyInfo((), (), (), (), ())
        with pytest.raises(ConfigurationError):
            TenancyInfo(("a", "b"), ("c",), (0, 0), (1.0, 1.0), (SLO, SLO))

    def test_spec_priority_shortcut(self):
        assert spec(tenant_class=INTERACTIVE).priority == 10

    def test_merge_requires_unique_names(self):
        with pytest.raises(ConfigurationError):
            merge_tenant_requests([spec(name="a"), spec(name="a", seed=1)])
        with pytest.raises(ConfigurationError):
            merge_tenant_requests([])

    def test_merge_tags_sorts_and_reindexes(self):
        merged = merge_tenant_requests(
            [spec(name="a", seed=0), spec(name="b", seed=1)]
        )
        assert [r.index for r in merged] == list(range(len(merged)))
        arrivals = [r.arrival for r in merged]
        assert arrivals == sorted(arrivals)
        assert {r.tenant for r in merged} == {0, 1}

    def test_single_tenant_merge_is_identity(self):
        from repro.serving.requests import RequestStream

        one = spec(name="only", seed=3)
        assert merge_tenant_requests([one]) == RequestStream(
            one.stream
        ).generate()


# ---------------------------------------------------------------------------
# PriorityAdmissionQueue: deterministic unit coverage
# ---------------------------------------------------------------------------
def make_queue(tenants, max_batch_tokens=100, max_queue_tokens=None,
               policy="priority", collect_meta=False):
    return PriorityAdmissionQueue(
        BatchingConfig(
            max_batch_tokens=max_batch_tokens,
            max_queue_tokens=max_queue_tokens,
        ),
        tenants,
        collect_meta=collect_meta,
        policy=policy,
    )


class TestPriorityQueueBasics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_queue([])
        with pytest.raises(ConfigurationError):
            make_queue([spec()], policy="lifo")
        assert "priority" in ADMISSION_POLICIES

    def test_rejects_out_of_range_tenant(self):
        queue = make_queue([spec()])
        with pytest.raises(ConfigurationError):
            queue.offer(request(0, 10, tenant=5))

    def test_higher_priority_dispatches_first(self):
        queue = make_queue(
            [spec(name="lo"), spec(name="hi", tenant_class=INTERACTIVE)],
            max_batch_tokens=100,
        )
        queue.offer(request(0, 60, tenant=0))
        queue.offer(request(1, 60, tenant=1))
        batch = queue.next_batch()
        # hi's head dispatches; lo's would overflow the budget and a
        # budget-blocked head at any level stops formation.
        assert [r.tenant for r in batch] == [1]
        assert [r.tenant for r in queue.next_batch()] == [0]

    def test_first_pop_ignores_budget(self):
        queue = make_queue([spec()], max_batch_tokens=10)
        queue.offer(request(0, 500))
        assert [r.index for r in queue.next_batch()] == [0]

    def test_weighted_fair_stride_shares_by_weight(self):
        queue = make_queue(
            [spec(name="heavy", weight=3.0), spec(name="light", weight=1.0)],
            max_batch_tokens=40,
        )
        for i in range(12):
            queue.offer(request(2 * i, 10, tenant=0))
            queue.offer(request(2 * i + 1, 10, tenant=1))
        served = Counter()
        for _ in range(3):
            for r in queue.next_batch():
                served[r.tenant] += r.tokens
        # 3:1 weights over equal demand: the stride keys converge to a
        # 3:1 token split.
        assert served[0] == 3 * served[1]

    def test_equal_weights_tie_breaks_to_lower_tenant(self):
        queue = make_queue([spec(name="a"), spec(name="b")])
        queue.offer(request(0, 10, tenant=1))
        queue.offer(request(1, 10, tenant=0))
        assert queue.next_batch()[0].tenant == 0

    def test_quota_caps_tenant_share_per_batch(self):
        queue = make_queue(
            [spec(name="capped", quota=40), spec(name="free")],
            max_batch_tokens=100,
        )
        for i in range(5):
            queue.offer(request(i, 20, tenant=0))
        queue.offer(request(5, 20, tenant=1))
        batch = queue.next_batch()
        by_tenant = Counter(r.tenant for r in batch)
        assert by_tenant[0] == 2  # 40 of quota 40
        assert by_tenant[1] == 1

    def test_quota_never_blocks_first_pop(self):
        queue = make_queue([spec(quota=10)])
        queue.offer(request(0, 500))
        assert len(queue.next_batch()) == 1

    def test_fifo_policy_ignores_priorities(self):
        queue = make_queue(
            [spec(name="lo"), spec(name="hi", tenant_class=INTERACTIVE)],
            max_batch_tokens=100,
            policy="fifo",
        )
        queue.offer(request(0, 60, tenant=0))
        queue.offer(request(1, 60, tenant=1))
        assert [r.tenant for r in queue.next_batch()] == [0]

    def test_collect_meta_exposes_tenant_column(self):
        queue = make_queue(
            [spec(name="a"), spec(name="b", tenant_class=INTERACTIVE)],
            collect_meta=True,
        )
        queue.offer(request(0, 10, tenant=0, arrival=0.5, topic=2))
        queue.offer(request(1, 20, tenant=1, arrival=0.7, topic=1))
        batch = queue.next_batch()
        assert queue.last_batch_tenants.tolist() == [r.tenant for r in batch]
        assert queue.last_batch_tokens.tolist() == [r.tokens for r in batch]
        assert queue.last_batch_arrivals.tolist() == [
            r.arrival for r in batch
        ]


class TestTwoLevelBackpressure:
    def test_global_limit_applies_first(self):
        queue = make_queue([spec()], max_queue_tokens=100)
        assert queue.offer(request(0, 60))
        assert queue.offer(request(1, 40))
        assert not queue.offer(request(2, 10))
        assert queue.rejected_requests == 1

    def test_per_tenant_limit(self):
        queue = make_queue([spec(limit=50), spec(name="other")])
        assert queue.offer(request(0, 40, tenant=0))
        assert not queue.offer(request(1, 20, tenant=0))  # 60 > 50
        assert queue.offer(request(2, 20, tenant=1))  # other tenant free
        assert queue.rejected_requests == 1

    def test_empty_tenant_queue_always_admits(self):
        queue = make_queue([spec(limit=50)])
        assert queue.offer(request(0, 500))  # oversized but tenant empty
        assert not queue.offer(request(1, 1))

    def test_empty_global_queue_always_admits(self):
        queue = make_queue([spec()], max_queue_tokens=50)
        assert queue.offer(request(0, 500))


class TestRequeue:
    def test_requeue_restores_front_order_and_counters(self):
        queue = make_queue([spec(name="a"), spec(name="b")])
        for i in range(4):
            queue.offer(request(i, 10, tenant=i % 2))
        batch = queue.next_batch()
        assert queue.queued_requests == 0
        queue.requeue(batch)
        assert queue.queued_requests == 4
        assert queue.queued_tokens == 40
        assert queue.tenant_queued_tokens(0) == 20
        # Re-dispatch reproduces the identical batch.
        assert queue.next_batch() == batch

    def test_requeue_refunds_fairness_credit(self):
        queue = make_queue([spec(name="a"), spec(name="b")])
        queue.offer(request(0, 30, tenant=0))
        batch = queue.next_batch()
        assert queue.tenant_served_tokens(0) == 30.0
        queue.requeue(batch)
        assert queue.tenant_served_tokens(0) == 0.0

    def test_requeued_head_precedes_later_arrivals(self):
        queue = make_queue([spec()], max_batch_tokens=10)
        queue.offer(request(0, 10))
        batch = queue.next_batch()
        queue.offer(request(1, 10))
        queue.requeue(batch)
        assert [r.index for r in queue.next_batch()] == [0]


# ---------------------------------------------------------------------------
# Hypothesis: conservation + priority-ordering invariants (ISSUE-7)
# ---------------------------------------------------------------------------
def tenant_fleet():
    """2-4 tenants with arbitrary priorities, weights, quotas, limits."""
    single = st.builds(
        lambda p, w, q, m, pre: (p, w, q, m, pre),
        st.integers(0, 3),
        st.floats(0.5, 4.0, allow_nan=False),
        st.one_of(st.none(), st.integers(20, 120)),
        st.one_of(st.none(), st.integers(50, 400)),
        st.booleans(),
    )
    return st.lists(single, min_size=2, max_size=4).map(
        lambda rows: tuple(
            TenantSpec(
                name=f"t{i}",
                stream=stream_config(seed=i),
                tenant_class=TenantClass(
                    f"c{p}", SLO, priority=p, preemptible=pre
                ),
                weight=w,
                quota_tokens=q,
                max_queue_tokens=m,
            )
            for i, (p, w, q, m, pre) in enumerate(rows)
        )
    )


def op_sequence():
    return st.lists(
        st.one_of(
            st.tuples(
                st.just("offer"),
                st.integers(0, 3),  # tenant (mod fleet size)
                st.integers(1, 120),  # tokens
            ),
            st.tuples(st.just("batch")),
            st.tuples(st.just("requeue")),
        ),
        min_size=1,
        max_size=60,
    )


@settings(max_examples=120, deadline=None)
@given(
    tenants=tenant_fleet(),
    ops=op_sequence(),
    max_batch_tokens=st.integers(20, 200),
    max_queue_tokens=st.one_of(st.none(), st.integers(100, 600)),
)
def test_property_request_conservation(
    tenants, ops, max_batch_tokens, max_queue_tokens
):
    """Offers + dispatches + preemption requeues never lose or duplicate
    a request: admitted == dispatched + queued at every point, and the
    final drain recovers exactly the admitted multiset."""
    queue = make_queue(
        tenants,
        max_batch_tokens=max_batch_tokens,
        max_queue_tokens=max_queue_tokens,
    )
    admitted: Counter = Counter()
    dispatched: Counter = Counter()
    rejected = 0
    inflight = None  # the last dispatched batch, eligible for requeue
    next_index = 0
    for op in ops:
        if op[0] == "offer":
            _, tenant, tokens = op
            r = request(next_index, tokens, tenant=tenant % len(tenants))
            next_index += 1
            if queue.offer(r):
                admitted[r.index] += 1
            else:
                rejected += 1
        elif op[0] == "batch":
            batch = queue.next_batch()
            for r in batch:
                dispatched[r.index] += 1
            if batch:
                inflight = batch
        elif op[0] == "requeue" and inflight is not None:
            queue.requeue(inflight)
            for r in inflight:
                dispatched[r.index] -= 1
            inflight = None
        # Conservation holds at every intermediate state.
        queued = sum(admitted.values()) - sum(dispatched.values())
        assert queue.queued_requests == queued
        assert queue.rejected_requests == rejected
    while queue.queued_requests:
        for r in queue.next_batch():
            dispatched[r.index] += 1
    assert dispatched == admitted  # same multiset: nothing lost, none twice
    assert queue.queued_tokens == 0
    assert all(count == 1 for count in dispatched.values())


@settings(max_examples=120, deadline=None)
@given(
    tenants=tenant_fleet(),
    offers=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 120)),
        min_size=1,
        max_size=40,
    ),
    max_batch_tokens=st.integers(20, 200),
)
def test_property_priority_ordering_invariant(
    tenants, offers, max_batch_tokens
):
    """Replay each dispatched batch against a snapshot of the queues: a
    request only dispatches while no strictly-higher-priority tenant has
    a dispatchable head (within quota and the remaining batch budget),
    and each tenant's requests dispatch in FIFO order."""
    queue = make_queue(tenants, max_batch_tokens=max_batch_tokens)
    snapshot = defaultdict(deque)
    for index, (tenant, tokens) in enumerate(offers):
        r = request(index, tokens, tenant=tenant % len(tenants))
        if queue.offer(r):
            snapshot[r.tenant].append(r)

    priorities = [t.tenant_class.priority for t in tenants]
    quotas = [t.quota_tokens for t in tenants]
    while queue.queued_requests:
        batch = queue.next_batch()
        assert batch
        used = [0] * len(tenants)
        batch_tokens = 0
        for r in batch:
            # FIFO within the tenant: always its current head.
            assert snapshot[r.tenant][0] is r
            for other in range(len(tenants)):
                if priorities[other] <= priorities[r.tenant]:
                    continue
                if not snapshot[other]:
                    continue
                head = snapshot[other][0]
                quota = quotas[other]
                quota_ok = (
                    quota is None
                    or not used[other]
                    or used[other] + head.tokens <= quota
                )
                budget_ok = (
                    not batch_tokens
                    or batch_tokens + head.tokens <= max_batch_tokens
                )
                assert not (quota_ok and budget_ok), (
                    f"request of priority {priorities[r.tenant]} dispatched "
                    f"while tenant {other} (priority {priorities[other]}) "
                    "had a dispatchable head"
                )
            snapshot[r.tenant].popleft()
            used[r.tenant] += r.tokens
            batch_tokens += r.tokens


@settings(max_examples=60, deadline=None)
@given(
    offers=st.lists(st.integers(1, 120), min_size=1, max_size=30),
    max_batch_tokens=st.integers(20, 200),
    max_queue_tokens=st.one_of(st.none(), st.integers(50, 400)),
)
def test_property_single_tenant_reduces_to_plain_queue(
    offers, max_batch_tokens, max_queue_tokens
):
    """With one tenant and no per-tenant bounds, both policies drain
    batches identical to the plain :class:`AdmissionQueue` -- the
    reduction the single-tenant identity tests rely on."""
    from repro.serving.admission import AdmissionQueue

    config = BatchingConfig(
        max_batch_tokens=max_batch_tokens, max_queue_tokens=max_queue_tokens
    )
    reference = AdmissionQueue(config)
    drained = {}
    for policy in ADMISSION_POLICIES:
        queue = make_queue(
            (spec(name="only"),),
            max_batch_tokens=max_batch_tokens,
            max_queue_tokens=max_queue_tokens,
            policy=policy,
        )
        batches = []
        for index, tokens in enumerate(offers):
            queue.offer(request(index, tokens))
        while queue.queued_requests:
            batches.append(tuple(r.index for r in queue.next_batch()))
        drained[policy] = batches
    for index, tokens in enumerate(offers):
        reference.offer(request(index, tokens))
    expected = []
    while reference.queued_requests:
        expected.append(tuple(r.index for r in reference.next_batch()))
    assert drained["priority"] == expected
    assert drained["fifo"] == expected


# ---------------------------------------------------------------------------
# MultiTenantServingSource: preemption semantics on the kernel
# ---------------------------------------------------------------------------
def run_source(tenants, requests, max_batch_tokens=100, preemption=True,
               execute=10.0, duration=None):
    queue = make_queue(tenants, max_batch_tokens=max_batch_tokens)
    dispatched, completed, preempted = [], [], []

    def dispatch(batch, now, index):
        dispatched.append((batch, now, index))
        return execute

    source = MultiTenantServingSource(
        requests,
        queue,
        dispatch,
        complete=lambda batch, start, exe: completed.append((batch, start, exe)),
        preempted=lambda batch, start, elapsed: preempted.append(
            (batch, start, elapsed)
        ),
        preemption=preemption,
    )
    Scenario(
        name="mt-preempt", sources=(source,), duration=duration
    ).run()
    return source, dispatched, completed, preempted


PREEMPT_TENANTS = (
    spec(name="batch", tenant_class=BATCH),
    spec(name="chat", tenant_class=INTERACTIVE),
)


class TestPreemption:
    def test_higher_priority_arrival_preempts_inflight(self):
        requests = (
            request(0, 100, tenant=0, arrival=0.0),
            request(1, 100, tenant=1, arrival=1.0),
        )
        source, dispatched, completed, preempted = run_source(
            PREEMPT_TENANTS, requests
        )
        # batch dispatches at t=0, chat preempts at t=1, chat runs
        # 1..11, batch re-dispatches 11..21.
        assert source.preemptions == 1
        assert source.preempted_requests == 1
        assert source.wasted_seconds == pytest.approx(1.0)
        assert [r.index for b, _, _ in dispatched for r in b] == [0, 1, 0]
        assert [(b[0].index, start) for b, start, _ in completed] == [
            (1, 1.0),
            (0, 11.0),
        ]
        assert [b[0].index for b, _, _ in preempted] == [0]
        assert source.num_batches == 3  # the re-dispatch is a real batch
        assert not source.rejected

    def test_stale_completion_never_fires(self):
        """The preempted batch's scheduled completion (t=10) lands while
        the preemptor is in flight; a fired stale completion would
        record the wrong batch or free a busy server."""
        requests = (
            request(0, 100, tenant=0, arrival=0.0),
            request(1, 100, tenant=1, arrival=1.0),
        )
        _, _, completed, _ = run_source(PREEMPT_TENANTS, requests)
        assert all(start != 0.0 for _, start, _ in completed)

    def test_preemption_disabled_runs_to_completion(self):
        requests = (
            request(0, 100, tenant=0, arrival=0.0),
            request(1, 100, tenant=1, arrival=1.0),
        )
        source, _, completed, preempted = run_source(
            PREEMPT_TENANTS, requests, preemption=False
        )
        assert source.preemptions == 0
        assert not preempted
        assert [(b[0].index, start) for b, start, _ in completed] == [
            (0, 0.0),
            (1, 10.0),
        ]

    def test_non_preemptible_inflight_survives(self):
        tenants = (
            spec(
                name="pinned",
                tenant_class=TenantClass(
                    "pinned", SLO, priority=0, preemptible=False
                ),
            ),
            spec(name="chat", tenant_class=INTERACTIVE),
        )
        requests = (
            request(0, 100, tenant=0, arrival=0.0),
            request(1, 100, tenant=1, arrival=1.0),
        )
        source, _, completed, _ = run_source(tenants, requests)
        assert source.preemptions == 0
        assert completed[0][0][0].index == 0

    def test_equal_priority_never_preempts(self):
        tenants = (
            spec(name="a", tenant_class=BATCH),
            spec(name="b", tenant_class=BATCH.replace(name="batch2")),
        )
        requests = (
            request(0, 100, tenant=0, arrival=0.0),
            request(1, 100, tenant=1, arrival=1.0),
        )
        source, _, _, _ = run_source(tenants, requests)
        assert source.preemptions == 0

    def test_preempted_request_keeps_original_arrival_latency(self):
        """A preempted request's eventual record measures queue time
        from its *original* arrival -- preemption cost is visible, not
        erased."""
        requests = (
            request(0, 100, tenant=0, arrival=0.0),
            request(1, 100, tenant=1, arrival=1.0),
        )
        _, _, completed, _ = run_source(PREEMPT_TENANTS, requests)
        batch, start, _ = completed[-1]
        assert batch[0].index == 0
        assert start - batch[0].arrival == pytest.approx(11.0)


# ---------------------------------------------------------------------------
# Eager-vs-lazy admission default (ISSUE-7 satellite: the composed-
# scenario bug class documented in docs/serving.md)
# ---------------------------------------------------------------------------
class TestEagerAdmissionDefault:
    def test_event_source_defaults_to_eager(self):
        parameters = inspect.signature(ServingEngine.event_source).parameters
        assert parameters["lazy_admission"].default is False

    def test_lazy_admission_strands_arrivals_under_finite_horizon(self):
        """Why eager is the default: lazy bulk admission only observes
        arrivals at completions, and a completion past the scenario
        horizon never fires -- requests 1 and 2 are never even offered.
        The eager source has them queued at the horizon."""
        queued = {}
        for lazy in (False, True):
            queue_holder = {}

            def serve(batch, now, index):
                return 10.0

            from repro.serving.admission import AdmissionQueue

            queue = AdmissionQueue(BatchingConfig(max_batch_tokens=100))
            requests = tuple(
                request(i, 100, arrival=float(i)) for i in range(3)
            )
            source = ServingSource(requests, queue, serve, vectorized=lazy)
            Scenario(
                name="horizon", sources=(source,), duration=5.0
            ).run()
            queued[lazy] = queue.queued_requests
        assert queued[False] == 2
        assert queued[True] == 0

    def test_multitenant_event_source_rejects_lazy(self):
        engine = _tiny_engine()
        with pytest.raises(ConfigurationError):
            engine.event_source(lazy_admission=True)

    def test_multitenant_rejects_legacy_clock_loop(self):
        engine = _tiny_engine()
        with pytest.raises(ConfigurationError):
            engine.run(kernel=False)


def _tiny_engine(policy="priority", preemption=True, dynamic=True):
    from repro.bench.harness import cluster_for
    from repro.config import MoEModelConfig
    from repro.serving.baseline import build_multitenant_serving

    tenants = (
        spec(name="chat", tenant_class=INTERACTIVE, n=6, seed=0),
        spec(name="bulk", tenant_class=BATCH, n=6, seed=1),
    )
    model = MoEModelConfig(
        name="mt-tiny", num_layers=2, d_model=256, d_ffn=1024, num_experts=8
    )
    return build_multitenant_serving(
        cluster_for(4),
        model,
        tenants,
        BatchingConfig(max_batch_tokens=512),
        num_moe_layers=1,
        seed=0,
        dynamic=dynamic,
        admission_policy=policy,
        preemption=preemption,
    )


# ---------------------------------------------------------------------------
# Engine validation + reporting
# ---------------------------------------------------------------------------
class TestEngineValidation:
    def test_admission_policy_validated(self):
        with pytest.raises(ConfigurationError):
            _tiny_engine(policy="lifo")

    def test_requests_require_tenants(self):
        from repro.bench.harness import cluster_for
        from repro.config import MoEModelConfig
        from repro.runtime.pipeline import build_engine

        engine = build_engine(
            cluster_for(4),
            MoEModelConfig(
                name="mt-val", num_layers=2, d_model=256, d_ffn=1024,
                num_experts=8,
            ),
            num_moe_layers=1,
            inference=True,
        )
        with pytest.raises(ConfigurationError):
            ServingEngine(
                engine, None, BatchingConfig(max_batch_tokens=512), SLO
            )

    def test_tenant_ids_must_be_in_range(self):
        from repro.bench.harness import cluster_for
        from repro.config import MoEModelConfig
        from repro.runtime.pipeline import build_engine

        engine = build_engine(
            cluster_for(4),
            MoEModelConfig(
                name="mt-range", num_layers=2, d_model=256, d_ffn=1024,
                num_experts=8,
            ),
            num_moe_layers=1,
            inference=True,
        )
        with pytest.raises(ConfigurationError):
            ServingEngine(
                engine,
                (request(0, 10, tenant=7),),
                BatchingConfig(max_batch_tokens=512),
                SLO,
                tenants=(spec(name="only"),),
            )

    def test_multitenant_run_reports_tenancy(self):
        report = _tiny_engine().run()
        assert report.tenancy is not None
        assert report.tenancy.names == ("chat", "bulk")
        assert report.tenancy.priorities == (10, 0)
        per_class = report.per_class_summary()
        assert set(per_class) == {"interactive", "batch"}
        assert 0.0 <= report.jain_fairness_index() <= 1.0
        mt = report.multitenant_summary()
        assert {"per_class", "per_tenant", "jain_fairness"} <= set(mt)

    def test_single_stream_report_has_no_tenancy(self):
        report = ServingReport(
            engine="x", records=(), rejected=(), slo=SLO, num_batches=0,
            sim_duration=0.0,
        )
        assert report.tenancy is None
        with pytest.raises(ConfigurationError):
            report.per_class_summary()


class TestFairnessIndex:
    def _report(self, records, rejected, weights=(1.0, 1.0)):
        n = len(weights)
        info = TenancyInfo(
            names=tuple(f"t{i}" for i in range(n)),
            class_names=("c",) * n,
            priorities=(0,) * n,
            weights=weights,
            slos=(SLO,) * n,
        )
        return ServingReport(
            engine="x", records=tuple(records), rejected=tuple(rejected),
            slo=SLO, num_batches=1, sim_duration=1.0, tenancy=info,
        )

    def _record(self, index, tenant):
        return RequestRecord(
            request=request(index, 10, tenant=tenant),
            start=0.0, queue_time=0.0, execute_time=0.1,
        )

    def test_equal_service_is_perfectly_fair(self):
        report = self._report(
            [self._record(0, 0), self._record(1, 1)], []
        )
        assert report.jain_fairness_index() == pytest.approx(1.0)

    def test_starvation_halves_the_index(self):
        # One tenant fully served, the other fully rejected: Jain's
        # index of (1, 0) is 0.5.
        report = self._report(
            [self._record(0, 0)], [request(1, 10, tenant=1)]
        )
        assert report.jain_fairness_index() == pytest.approx(0.5)

    def test_weights_normalize_service_ratios(self):
        # Tenant 0 (weight 2) served twice, tenant 1 (weight 1) served
        # once of two offered: ratios (2/2)/2 = 0.5 and (1/2)/1 = 0.5.
        report = self._report(
            [self._record(0, 0), self._record(1, 0), self._record(2, 1)],
            [request(3, 10, tenant=1)],
            weights=(2.0, 1.0),
        )
        assert report.jain_fairness_index() == pytest.approx(1.0)

    def test_no_offered_traffic_is_vacuously_fair(self):
        assert self._report([], []).jain_fairness_index() == 1.0


# ---------------------------------------------------------------------------
# Graceful degradation: shedding lower-priority queued work
# ---------------------------------------------------------------------------
def shed_queue(tenants, max_queue_tokens=100, shed=True):
    return PriorityAdmissionQueue(
        BatchingConfig(
            max_batch_tokens=100, max_queue_tokens=max_queue_tokens
        ),
        tenants,
        policy="priority",
        shed_low_priority=shed,
    )


class TestShedding:
    two_class = (
        spec(name="chat", tenant_class=INTERACTIVE),
        spec(name="batch", tenant_class=BATCH),
    )

    def test_requires_priority_policy(self):
        with pytest.raises(ConfigurationError):
            PriorityAdmissionQueue(
                BatchingConfig(max_batch_tokens=100),
                self.two_class,
                policy="fifo",
                shed_low_priority=True,
            )

    def test_off_by_default_preserves_rejection(self):
        queue = shed_queue(self.two_class, shed=False)
        assert queue.offer(request(0, 100, tenant=1))
        assert not queue.offer(request(1, 50, tenant=0))
        assert queue.rejected_requests == 1
        assert queue.shed_requests == 0

    def test_sheds_newest_lower_priority_work_first(self):
        queue = shed_queue(self.two_class)
        assert queue.offer(request(0, 60, tenant=1))
        assert queue.offer(request(1, 40, tenant=1))
        # Interactive arrival needs 50 tokens of room: the newest batch
        # request (40 tokens) is not enough, so both batch entries shed.
        assert queue.offer(request(2, 50, tenant=0))
        assert queue.shed_requests == 2
        assert [r.index for r in queue.shed] == [1, 0]
        assert queue.shed_by_tenant(1) == 2
        assert queue.shed_by_tenant(0) == 0
        assert queue.queued_tokens == 50
        assert [r.index for r in queue.next_batch()] == [2]

    def test_partial_shed_keeps_oldest_batch_work(self):
        queue = shed_queue(self.two_class)
        assert queue.offer(request(0, 60, tenant=1))
        assert queue.offer(request(1, 40, tenant=1))
        # 20 tokens of room needed: shedding the newest batch request
        # alone suffices; the oldest keeps its place.
        assert queue.offer(request(2, 20, tenant=0))
        assert [r.index for r in queue.shed] == [1]
        assert queue.queued_tokens == 80
        assert queue.tenant_queued_tokens(1) == 60

    def test_never_sheds_equal_or_higher_priority(self):
        queue = shed_queue(self.two_class)
        assert queue.offer(request(0, 100, tenant=0))
        # A batch arrival has no strictly-lower level to raid.
        assert not queue.offer(request(1, 30, tenant=1))
        # Another interactive arrival cannot shed its own class either.
        assert not queue.offer(request(2, 30, tenant=0))
        assert queue.shed_requests == 0
        assert queue.rejected_requests == 2
        assert queue.queued_tokens == 100

    def test_hopeless_arrival_sheds_nothing(self):
        queue = shed_queue(self.two_class)
        assert queue.offer(request(0, 30, tenant=1))
        assert queue.offer(request(1, 60, tenant=0))
        # Freeing every batch token (30) still cannot fit 80 more:
        # the arrival bounces and no victim is evicted for nothing.
        assert not queue.offer(request(2, 80, tenant=0))
        assert queue.shed_requests == 0
        assert queue.queued_tokens == 90
        assert queue.tenant_queued_tokens(1) == 30

    def test_shed_accounting_is_conserved(self):
        queue = shed_queue(self.two_class)
        offered = [
            request(0, 50, tenant=1),
            request(1, 50, tenant=1),
            request(2, 90, tenant=0),
        ]
        admitted = [r for r in offered if queue.offer(r)]
        dispatched = []
        while True:
            batch = queue.next_batch()
            if not batch:
                break
            dispatched.extend(batch)
        # Every offered request is exactly one of: dispatched, shed, or
        # rejected at the door.
        assert len(dispatched) + queue.shed_requests + (
            len(offered) - len(admitted)
        ) == len(offered)
        assert {r.index for r in dispatched} | {
            r.index for r in queue.shed
        } == {0, 1, 2}

    def test_per_class_summary_folds_shed_counts(self):
        info = TenancyInfo(
            names=("chat", "batch"),
            class_names=("interactive", "batch"),
            priorities=(10, 0),
            weights=(1.0, 1.0),
            slos=(SLO, SLOConfig(latency_target=5.0)),
            shed_requests=3,
            shed_by_tenant=(0, 3),
        )
        record = RequestRecord(
            request=request(0, 10, tenant=0),
            start=0.0, queue_time=0.0, execute_time=0.1,
        )
        report = ServingReport(
            engine="x", records=(record,),
            rejected=(request(1, 10, tenant=1),), slo=SLO, num_batches=1,
            sim_duration=1.0, tenancy=info,
        )
        per_class = report.per_class_summary()
        assert per_class["batch"]["requests_shed"] == 3
        assert per_class["interactive"]["requests_shed"] == 0
        assert report.multitenant_summary()["shed_requests"] == 3
