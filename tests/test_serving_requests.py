"""Request streams: seeded determinism and the arrival/token models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving.requests import (
    ARRIVAL_MODELS,
    Request,
    RequestStream,
    RequestStreamConfig,
)


class TestConfigValidation:
    def test_rejects_unknown_arrival(self):
        with pytest.raises(ConfigurationError):
            RequestStreamConfig(arrival="constant")

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            RequestStreamConfig(rate_rps=0)

    def test_rejects_max_below_mean(self):
        with pytest.raises(ConfigurationError):
            RequestStreamConfig(mean_tokens=512, max_tokens=256)

    def test_rejects_bad_burst_fraction(self):
        with pytest.raises(ConfigurationError):
            RequestStreamConfig(burst_fraction=1.0)

    def test_rejects_bad_diurnal_amplitude(self):
        with pytest.raises(ConfigurationError):
            RequestStreamConfig(diurnal_amplitude=1.0)

    def test_replace(self):
        config = RequestStreamConfig(seed=3)
        assert config.replace(rate_rps=7.0).rate_rps == 7.0
        assert config.replace(rate_rps=7.0).seed == 3

    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            Request(index=0, arrival=-1.0, tokens=10, topic=0)
        with pytest.raises(ConfigurationError):
            Request(index=0, arrival=0.0, tokens=0, topic=0)


class TestDeterminism:
    """Same seed, identical arrival/token/topic sequences (the serving
    analogue of the workload generator's reproducibility contract)."""

    @pytest.mark.parametrize("arrival", ARRIVAL_MODELS)
    def test_same_seed_same_stream(self, arrival):
        config = RequestStreamConfig(
            arrival=arrival, rate_rps=50.0, num_requests=64, seed=11
        )
        first = RequestStream(config).generate()
        second = RequestStream(config).generate()
        assert first == second

    def test_generate_is_repeatable_on_one_instance(self):
        stream = RequestStream(RequestStreamConfig(num_requests=32, seed=5))
        assert stream.generate() == stream.generate()

    def test_different_seeds_differ(self):
        base = RequestStreamConfig(num_requests=64, seed=0)
        a = RequestStream(base).generate()
        b = RequestStream(base.replace(seed=1)).generate()
        assert a != b
        assert [r.arrival for r in a] != [r.arrival for r in b]


class TestStreamShape:
    def test_arrivals_sorted_and_positive(self):
        for arrival in ARRIVAL_MODELS:
            stream = RequestStream(
                RequestStreamConfig(arrival=arrival, num_requests=100, seed=2)
            )
            requests = stream.generate()
            arrivals = [r.arrival for r in requests]
            assert arrivals == sorted(arrivals)
            assert all(a > 0 for a in arrivals)
            assert [r.index for r in requests] == list(range(100))

    def test_token_counts_bounded(self):
        config = RequestStreamConfig(
            num_requests=200, mean_tokens=100, max_tokens=400, seed=3
        )
        requests = RequestStream(config).generate()
        assert all(1 <= r.tokens <= 400 for r in requests)

    def test_zero_sigma_fixes_token_counts(self):
        config = RequestStreamConfig(
            num_requests=50, mean_tokens=128, token_sigma=0.0, seed=4
        )
        assert all(r.tokens == 128 for r in RequestStream(config).generate())

    def test_topics_in_range(self):
        config = RequestStreamConfig(num_requests=200, num_topics=5, seed=6)
        requests = RequestStream(config).generate()
        topics = {r.topic for r in requests}
        assert topics <= set(range(5))
        assert len(topics) > 1  # the drifting mix visits several topics

    def test_poisson_rate_roughly_calibrated(self):
        config = RequestStreamConfig(
            arrival="poisson", rate_rps=100.0, num_requests=2000, seed=7
        )
        requests = RequestStream(config).generate()
        realized = len(requests) / requests[-1].arrival
        assert realized == pytest.approx(100.0, rel=0.15)

    def test_bursty_long_run_rate_matches_poisson(self):
        """The burst modulation conserves the configured mean rate."""
        kwargs = dict(rate_rps=100.0, num_requests=4000, seed=8)
        poisson = RequestStream(
            RequestStreamConfig(arrival="poisson", **kwargs)
        ).generate()
        bursty = RequestStream(
            RequestStreamConfig(arrival="bursty", **kwargs)
        ).generate()
        assert bursty[-1].arrival == pytest.approx(
            poisson[-1].arrival, rel=0.25
        )

    def test_bursty_has_heavier_interarrival_tail(self):
        kwargs = dict(rate_rps=100.0, num_requests=4000, seed=9)
        def gaps(arrival):
            times = np.array([
                r.arrival
                for r in RequestStream(
                    RequestStreamConfig(arrival=arrival, **kwargs)
                ).generate()
            ])
            return np.diff(times)
        # Burst episodes compress many gaps; quiet periods stretch the
        # tail: the gap distribution's dispersion exceeds Poisson's.
        poisson, bursty = gaps("poisson"), gaps("bursty")
        cv = lambda g: g.std() / g.mean()
        assert cv(bursty) > cv(poisson)

    def test_diurnal_rate_oscillates(self):
        config = RequestStreamConfig(
            arrival="diurnal",
            rate_rps=100.0,
            num_requests=3000,
            diurnal_period_s=10.0,
            diurnal_amplitude=0.9,
            seed=10,
        )
        requests = RequestStream(config).generate()
        times = np.array([r.arrival for r in requests])
        # Bin arrivals by period phase: peak-phase bins must clearly
        # out-populate trough-phase bins.
        phase = (times % 10.0) / 10.0
        peak = ((phase > 0.15) & (phase < 0.35)).sum()   # sin ~ +1
        trough = ((phase > 0.65) & (phase < 0.85)).sum()  # sin ~ -1
        assert peak > 2 * trough

    def test_offered_tokens_matches_sum(self):
        stream = RequestStream(RequestStreamConfig(num_requests=64, seed=12))
        assert stream.offered_tokens() == sum(
            r.tokens for r in stream.generate()
        )
