"""Repository hygiene: no compiled bytecode may ever be committed.

The seed repo once carried ``__pycache__`` directories in the index;
``.gitignore`` now excludes them and this test (plus the same check in
``tools/check_docs.py``, which CI runs) keeps them from coming back.
"""

import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def tracked_files() -> list[str]:
    try:
        listed = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if listed.returncode != 0:
        pytest.skip("not a git checkout")
    return listed.stdout.splitlines()


def test_no_pycache_directories_tracked():
    offenders = [f for f in tracked_files() if "__pycache__" in f]
    assert offenders == [], (
        "compiled bytecode is tracked; remove with `git rm -r --cached`: "
        f"{offenders}"
    )


def test_no_bytecode_files_tracked():
    offenders = [
        f for f in tracked_files() if f.endswith((".pyc", ".pyo"))
    ]
    assert offenders == []


def test_gitignore_excludes_bytecode():
    text = (REPO / ".gitignore").read_text(encoding="utf-8")
    assert "__pycache__/" in text
    assert "*.py[cod]" in text or "*.pyc" in text
