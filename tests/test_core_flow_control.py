"""Unit tests for the gate flow-controller."""

import numpy as np
import pytest

from repro.core.flow_control import GateFlowController
from repro.core.placement import Placement
from repro.exceptions import RoutingError


@pytest.fixture
def small_placement() -> Placement:
    return Placement.balanced(4, 4, 2)


class TestAdmission:
    def test_balanced_traffic_passes_through(self, small_placement):
        controller = GateFlowController(watermark_factor=2.0)
        assignment = np.full((4, 4), 100, dtype=np.int64)
        admitted = controller.admit(assignment, small_placement)
        assert np.array_equal(admitted, assignment)
        assert controller.deferred_total == 0

    def test_spike_deferred(self, small_placement):
        controller = GateFlowController(watermark_factor=1.5)
        assignment = np.full((4, 4), 100, dtype=np.int64)
        assignment[0] = 5000  # hot expert spike
        admitted = controller.admit(assignment, small_placement)
        assert admitted.sum() < assignment.sum()
        assert controller.backlog_tokens > 0
        assert controller.deferred_total > 0

    def test_deferred_tokens_reinjected_next_step(self, small_placement):
        controller = GateFlowController(watermark_factor=1.5)
        spike = np.full((4, 4), 100, dtype=np.int64)
        spike[0] = 5000
        admitted1 = controller.admit(spike, small_placement)
        deferred = int(spike.sum() - admitted1.sum())
        calm = np.full((4, 4), 100, dtype=np.int64)
        admitted2 = controller.admit(calm, small_placement)
        # No token is ever dropped: across both steps everything admitted
        # except what is still backlogged.
        total_in = spike.sum() + calm.sum()
        total_out = admitted1.sum() + admitted2.sum()
        assert total_out + controller.backlog_tokens == total_in
        assert deferred > 0

    def test_backlog_age_valve_releases_everything(self, small_placement):
        controller = GateFlowController(
            watermark_factor=1.01, max_backlog_steps=2
        )
        spike = np.full((4, 4), 10, dtype=np.int64)
        spike[0] = 10_000
        released_everything = False
        total_admitted = 0
        for _ in range(6):
            admitted = controller.admit(spike, small_placement)
            total_admitted += int(admitted.sum())
            if controller.backlog_tokens == 0:
                released_everything = True
        assert released_everything

    def test_infinite_watermark_disables(self, small_placement):
        controller = GateFlowController(watermark_factor=float("inf"))
        spike = np.full((4, 4), 10, dtype=np.int64)
        spike[0] = 100_000
        admitted = controller.admit(spike, small_placement)
        assert np.array_equal(admitted, spike)

    def test_proportional_deferral_preserves_sources(self, small_placement):
        controller = GateFlowController(watermark_factor=1.2)
        assignment = np.zeros((4, 4), dtype=np.int64)
        assignment[0] = [4000, 2000, 1000, 1000]
        admitted = controller.admit(assignment, small_placement)
        deferred = assignment - admitted
        # deferral roughly proportional to each source's share
        assert deferred[0, 0] > deferred[0, 2]

    def test_shape_change_rejected(self, small_placement):
        controller = GateFlowController(watermark_factor=1.1)
        spike = np.full((4, 4), 10, dtype=np.int64)
        spike[0] = 10_000
        controller.admit(spike, small_placement)
        with pytest.raises(RoutingError):
            controller.admit(np.zeros((5, 4), dtype=np.int64), small_placement)

    def test_validation(self):
        with pytest.raises(RoutingError):
            GateFlowController(watermark_factor=0)
        with pytest.raises(RoutingError):
            GateFlowController(max_backlog_steps=0)


class TestWatermarks:
    def test_watermarks_scale_with_replicas(self, small_placement):
        controller = GateFlowController(watermark_factor=1.0)
        assignment = np.full((4, 4), 100, dtype=np.int64)
        marks = controller.watermarks(assignment, small_placement)
        assert marks.shape == (4,)
        assert (marks >= 1).all()
