"""Elastic runtime end to end: eviction, re-homing, recovery, faults harness."""

import numpy as np
import pytest

from repro.bench.harness import faults_run
from repro.cluster.events import ClusterEvent, ElasticitySchedule
from repro.config import (
    ClusterConfig,
    FaultConfig,
    MoEModelConfig,
    SchedulerConfig,
    WorkloadConfig,
)
from repro.core.migration import evict_failed_gpus, plan_replacements
from repro.core.placement import Placement
from repro.exceptions import ElasticityError
from repro.runtime.pipeline import build_engine
from repro.training.loop import simulate_pipeline
from repro.workload.synthetic import make_multilayer_trace


SMALL_MODEL = MoEModelConfig(
    name="elastic-test", num_layers=4, d_model=128, d_ffn=512, num_experts=8
)
SMALL_CLUSTER = ClusterConfig(num_nodes=1, gpus_per_node=4)


def small_engine(schedule, scheduler_config=None, num_moe_layers=2):
    return build_engine(
        SMALL_CLUSTER,
        SMALL_MODEL,
        num_moe_layers=num_moe_layers,
        scheduler_config=scheduler_config,
        elasticity=schedule,
        seed=0,
    )


def small_trace(num_steps, num_moe_layers=2, seed=0, tokens_per_step=16_384):
    return make_multilayer_trace(
        num_moe_layers,
        SMALL_MODEL.num_experts,
        SMALL_CLUSTER.num_gpus,
        WorkloadConfig(
            tokens_per_step=tokens_per_step, num_steps=num_steps, seed=seed
        ),
    )


# ----------------------------------------------------------------------
# Eviction / re-homing primitives
# ----------------------------------------------------------------------
class TestEvictionPrimitives:
    def test_evict_drops_every_replica_on_dead_gpus(self):
        placement = Placement.balanced(8, 4, 4)
        lost = evict_failed_gpus(placement, [1])
        assert sum(lost.values()) == 4  # 4 slots' worth of vExperts
        assert placement.counts[:, 1].sum() == 0
        placement.validate()

    def test_evict_orphan_raises_clear_error(self):
        placement = Placement.expert_parallel(4, 4)  # one replica each
        with pytest.raises(ElasticityError, match="expert 2 lost all 1"):
            evict_failed_gpus(placement, [2])

    def test_orphan_check_runs_before_any_mutation(self):
        placement = Placement.expert_parallel(4, 4)
        snapshot = placement.counts
        with pytest.raises(ElasticityError):
            evict_failed_gpus(placement, [0, 1])
        assert (placement.counts == snapshot).all()

    def test_plan_replacements_restores_lost_replicas(self):
        # 3 slots per GPU, 2 used: the survivors have headroom.
        counts = np.array(
            [[1, 1, 0, 0], [0, 1, 1, 0], [0, 0, 1, 1], [1, 0, 0, 1]]
        )
        placement = Placement(counts, slots_per_gpu=3)
        lost = evict_failed_gpus(placement, [3])
        actions = plan_replacements(placement, lost, live_gpus=(0, 1, 2))
        assert len(actions) == sum(lost.values()) == 2
        for action in actions:
            action.apply(placement)
        assert (placement.replica_counts() == 2).all()
        assert placement.counts[:, 3].sum() == 0

    def test_plan_replacements_skips_when_survivors_are_full(self):
        # Balanced placements bind every slot, so survivors have no room.
        placement = Placement.balanced(4, 4, 2)
        lost = evict_failed_gpus(placement, [0])
        assert plan_replacements(placement, lost, live_gpus=(1, 2, 3)) == []

    def test_plan_replacements_requires_live_devices(self):
        placement = Placement.balanced(4, 4, 2)
        with pytest.raises(ElasticityError):
            plan_replacements(placement, {0: 1}, live_gpus=())


# ----------------------------------------------------------------------
# Engine-level failure handling
# ----------------------------------------------------------------------
class TestEngineFailure:
    def test_failure_mid_run_evicts_and_continues(self):
        schedule = ElasticitySchedule([ClusterEvent(step=3, kind="fail", gpu=1)])
        engine = small_engine(schedule)
        trace = small_trace(8)
        results = [engine.step(trace.step(t), t) for t in range(8)]
        # Before the event: full pool; after: one device gone.
        assert results[2].live_gpus == 4
        assert results[3].live_gpus == 3
        # No placement keeps a vExpert on the dead device.
        for placement in engine.placements():
            assert placement.counts[:, 1].sum() == 0
        # The dead device neither sources nor computes tokens.
        assert results[-1].layer_gpu_loads[:, 1].sum() == 0

    def test_tokens_conserved_through_resharding(self):
        schedule = ElasticitySchedule([ClusterEvent(step=2, kind="fail", gpu=0)])
        engine = small_engine(schedule)
        trace = small_trace(5)
        for t in range(5):
            result = engine.step(trace.step(t), t)
            assert result.processed_tokens == int(trace.step(t).sum())

    def test_target_and_active_both_evicted(self):
        schedule = ElasticitySchedule([ClusterEvent(step=2, kind="fail", gpu=2)])
        engine = small_engine(schedule)
        trace = small_trace(6)
        for t in range(6):
            engine.step(trace.step(t), t)
        for layer in engine.layers:
            assert layer.active_placement.counts[:, 2].sum() == 0
            assert layer.target_placement.counts[:, 2].sum() == 0
            layer.active_placement.validate()
            layer.target_placement.validate()

    def test_orphaned_expert_raises_from_engine_step(self):
        # One slot per GPU and as many experts as GPUs: every expert has a
        # single replica, so the failed device orphans one.
        model = SMALL_MODEL.replace(num_experts=4)
        engine = build_engine(
            SMALL_CLUSTER,
            model,
            num_moe_layers=1,
            scheduler_config=SchedulerConfig(slots_per_gpu=1),
            elasticity=ElasticitySchedule(
                [ClusterEvent(step=1, kind="fail", gpu=0)]
            ),
        )
        trace = make_multilayer_trace(
            1, 4, 4, WorkloadConfig(tokens_per_step=4096, num_steps=3)
        )
        engine.step(trace.step(0), 0)
        with pytest.raises(ElasticityError, match="lost all"):
            engine.step(trace.step(1), 1)

    def test_event_log_records_applied_events(self):
        schedule = ElasticitySchedule(
            [
                ClusterEvent(step=1, kind="slowdown", gpu=3, factor=0.5),
                ClusterEvent(step=2, kind="fail", gpu=1),
            ]
        )
        engine = small_engine(schedule)
        trace = small_trace(4)
        result = simulate_pipeline(engine, trace)
        assert [(s, ev.kind) for s, ev in result.event_log] == [
            (1, "slowdown"),
            (2, "fail"),
        ]
        assert result.live_gpus_per_step.tolist() == [4, 4, 3, 3]


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
class TestEngineRecovery:
    def test_recovered_device_is_refilled(self):
        schedule = ElasticitySchedule(
            [
                ClusterEvent(step=2, kind="fail", gpu=1),
                ClusterEvent(step=5, kind="recover", gpu=1),
            ]
        )
        engine = small_engine(schedule)
        # Steps must be long enough for the best-effort stream to pay the
        # refill transfers plus communicator creation within a few steps.
        trace = small_trace(12, tokens_per_step=2_097_152)
        results = [engine.step(trace.step(t), t) for t in range(12)]
        assert results[4].live_gpus == 3
        assert results[5].live_gpus == 4
        # The refill Expands ride the best-effort stream; well after the
        # recovery they have committed and the device hosts experts and
        # computes tokens again.
        for layer in engine.layers:
            assert layer.target_placement.counts[:, 1].sum() > 0
            assert layer.active_placement.counts[:, 1].sum() > 0
        assert results[-1].layer_gpu_loads[:, 1].sum() > 0

    def test_straggler_slowdown_changes_step_time(self):
        slow = ElasticitySchedule(
            [ClusterEvent(step=0, kind="slowdown", gpu=0, factor=0.25)]
        )
        engine_slow = small_engine(
            slow, scheduler_config=SchedulerConfig(balance_threshold=1e9,
                                                   migrate=False)
        )
        engine_fast = small_engine(
            ElasticitySchedule([]),
            scheduler_config=SchedulerConfig(balance_threshold=1e9,
                                             migrate=False),
        )
        trace = small_trace(4)
        # Step 0 is dominated by one-time communicator creation in both
        # engines; compare the steady steps after it.
        slow_times = [
            engine_slow.step(trace.step(t), t).step_time for t in range(4)
        ]
        fast_times = [
            engine_fast.step(trace.step(t), t).step_time for t in range(4)
        ]
        assert sum(slow_times[1:]) > 1.5 * sum(fast_times[1:])


# ----------------------------------------------------------------------
# Faults harness
# ----------------------------------------------------------------------
class TestFaultsRun:
    def test_seeded_scenario_is_deterministic(self):
        kwargs = dict(num_moe_layers=1, num_gpus=4, num_experts=8,
                      num_steps=24, tokens_per_gpu=4096, seed=7)
        assert faults_run(**kwargs).summary() == faults_run(**kwargs).summary()

    def test_smoke_scenario_recovers(self):
        result = faults_run(
            num_moe_layers=2, num_gpus=8, num_experts=16,
            num_steps=40, seed=0,
        )
        summary = result.summary()
        assert summary["ok"]
        assert result.flexmoe_rehomed and result.baseline_rehomed
        assert summary["flexmoe"]["recovered"] == 1.0
        # Re-converged: the final mean sits below the disruption peak.
        assert summary["flexmoe"]["final"] < summary["flexmoe"]["disruption_peak"]
        # Dynamic placement beats the static baseline on the same events.
        assert summary["final_speedup"] > 1.0

    def test_permanent_failure_rehomes_for_good(self):
        # No recovery: the dead device stays dead, so the rehomed flag
        # genuinely asserts that no placement still maps to it at the end.
        result = faults_run(
            num_moe_layers=1, num_gpus=4, num_experts=8, num_steps=16,
            tokens_per_gpu=4096,
            faults=FaultConfig(num_failures=1, failure_step=4,
                               recovery_steps=None, num_stragglers=0),
            seed=2,
        )
        assert result.flexmoe_rehomed and result.baseline_rehomed
        assert (result.flexmoe.live_gpus_per_step[-1]) == 3

    def test_stragglers_cannot_exceed_surviving_pool(self):
        with pytest.raises(ElasticityError, match="stragglers"):
            ElasticitySchedule.from_fault_config(
                FaultConfig(num_failures=2, num_stragglers=7), 8
            )

    def test_rehoming_prefers_devices_not_holding_the_expert(self):
        # Expert 0 on {0, 2}, expert 1 on {1, 2}; gpu 2 dies. Rebuilding
        # on the co-resident device would pack both copies together and
        # defeat the distinct-device fault-tolerance floor.
        counts = np.array([[1, 0, 1], [0, 1, 1]])
        placement = Placement(counts, slots_per_gpu=2)
        lost = evict_failed_gpus(placement, [2])
        actions = plan_replacements(placement, lost, live_gpus=(0, 1))
        for action in actions:
            action.apply(placement)
        distinct = (placement.counts > 0).sum(axis=1)
        assert (distinct == 2).all()

    def test_cascading_permanent_failures_survive(self):
        # Three permanent failures in sequence: after each one the rescue
        # path must restore every below-floor expert onto a fresh device
        # (shrinking a donor when survivors are slot-full), or the next
        # failure would orphan it and abort the run.
        result = faults_run(
            num_moe_layers=1, num_gpus=8, num_experts=16, num_steps=30,
            tokens_per_gpu=8192,
            faults=FaultConfig(num_failures=3, failure_step=6,
                               failure_spacing=8, recovery_steps=None,
                               num_stragglers=0),
            seed=0,
        )
        assert result.flexmoe.live_gpus_per_step[-1] == 5
        assert result.flexmoe_rehomed and result.baseline_rehomed

    def test_rescue_shrinks_a_donor_when_survivors_are_full(self):
        # gpu 3 dies; expert 0 drops to one device while every surviving
        # slot is occupied. Rebuilding its second copy requires freeing a
        # slot first: a Shrink of a 3-replica donor on a device expert 0
        # does not occupy, followed by the rescue Expand.
        counts = np.array(
            [
                [1, 0, 0, 1],
                [0, 1, 1, 1],
                [1, 1, 1, 0],
                [1, 1, 1, 0],
            ]
        )
        placement = Placement(counts, slots_per_gpu=3)
        lost = evict_failed_gpus(placement, [3])
        actions = plan_replacements(
            placement, lost, live_gpus=(0, 1, 2), min_replicas=2
        )
        kinds = [type(a).__name__ for a in actions]
        assert "Shrink" in kinds and "Expand" in kinds
        for action in actions:
            action.apply(placement)
        distinct = (placement.counts > 0).sum(axis=1)
        assert (distinct >= 2).all()

    def test_failure_free_scenario(self):
        result = faults_run(
            num_moe_layers=1, num_gpus=4, num_experts=8, num_steps=12,
            tokens_per_gpu=4096,
            faults=FaultConfig(num_failures=0, num_stragglers=1,
                               straggler_step=2),
            seed=1,
        )
        summary = result.summary()
        assert summary["first_failure_step"] is None
        assert summary["flexmoe"]["final"] > 0

    def test_elastic_floor_keeps_two_distinct_devices(self):
        result = faults_run(
            num_moe_layers=1, num_gpus=4, num_experts=8, num_steps=16,
            tokens_per_gpu=4096,
            faults=FaultConfig(num_failures=0, num_stragglers=1,
                               straggler_step=2),
            seed=0,
        )
        # min_replicas=2 in elastic runs: despite plenty of scheduling,
        # no expert ever dropped to a single device.
        assert len(result.flexmoe.results) == 16
        # (final placements checked; intermediate invariants are implied
        # by the floor being enforced at proposal time)
        # Reconstruct the engine placements via the run's signatures is
        # not possible, so assert through a fresh run's engine instead.
        from repro.bench.harness import cluster_for
        from repro.cluster.events import ElasticitySchedule as ES

        engine = build_engine(
            cluster_for(4), SMALL_MODEL, num_moe_layers=1,
            scheduler_config=SchedulerConfig(min_replicas=2,
                                             speed_aware_balance=True,
                                             slots_per_gpu=6),
            elasticity=ES([ClusterEvent(step=1, kind="slowdown", gpu=0,
                                        factor=0.5)]),
        )
        trace = small_trace(10, num_moe_layers=1)
        for t in range(10):
            engine.step(trace.step(t), t)
        for placement in engine.placements():
            distinct = (placement.counts > 0).sum(axis=1)
            assert (distinct >= 2).all()
