"""Unit tests for communicator-group management (LRU cache, ordering)."""

import pytest

from repro.cluster.groups import (
    CommunicatorGroupCache,
    assert_deadlock_free,
    make_group_key,
    ordered_allreduce_schedule,
)
from repro.exceptions import SimulationError


class TestGroupKey:
    def test_sorted_and_deduped(self):
        assert make_group_key([3, 1, 3, 2]) == (1, 2, 3)


class TestCommunicatorGroupCache:
    def test_miss_then_hit(self):
        cache = CommunicatorGroupCache(capacity=4, creation_cost=0.1)
        assert cache.acquire([0, 1]) == 0.1
        assert cache.acquire([1, 0]) == 0.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_of_least_recent(self):
        cache = CommunicatorGroupCache(capacity=2, creation_cost=1.0)
        cache.acquire([0, 1])
        cache.acquire([0, 2])
        cache.acquire([0, 1])  # touch: (0,2) is now LRU
        cache.acquire([0, 3])  # evicts (0,2)
        assert (0, 1) in cache
        assert (0, 2) not in cache
        assert cache.stats.evictions == 1

    def test_hit_rate(self):
        cache = CommunicatorGroupCache()
        assert cache.stats.hit_rate == 0.0
        cache.acquire([0, 1])
        cache.acquire([0, 1])
        assert cache.stats.hit_rate == 0.5

    def test_rejects_empty_group(self):
        cache = CommunicatorGroupCache()
        with pytest.raises(SimulationError):
            cache.acquire([])

    def test_rejects_bad_capacity(self):
        with pytest.raises(SimulationError):
            CommunicatorGroupCache(capacity=0)

    def test_clear(self):
        cache = CommunicatorGroupCache()
        cache.acquire([0, 1])
        cache.clear()
        assert len(cache) == 0


class TestAllReduceOrdering:
    def test_singleton_groups_skipped(self):
        schedules = ordered_allreduce_schedule({0: [3], 1: [1, 2]})
        assert set(schedules) == {1, 2}

    def test_ordered_by_expert_id(self):
        schedules = ordered_allreduce_schedule(
            {5: [0, 1], 2: [1, 2], 9: [0, 2]}
        )
        rank1_experts = [launch.expert for launch in schedules[1]]
        assert rank1_experts == sorted(rank1_experts)

    def test_schedule_is_deadlock_free(self):
        schedules = ordered_allreduce_schedule(
            {e: [e % 3, (e + 1) % 3, 3] for e in range(6)}
        )
        assert_deadlock_free(schedules)

    def test_detects_inverted_order(self):
        from repro.cluster.groups import AllReduceLaunch

        a = AllReduceLaunch(expert=0, group=(0, 1))
        b = AllReduceLaunch(expert=1, group=(0, 1, 2))
        bad = {0: (a, b), 1: (b, a)}
        with pytest.raises(SimulationError):
            assert_deadlock_free(bad)
