"""Hierarchical two-level placement search vs the flat reference.

The datacenter-scale sweep (``python -m repro scale``) relies on two
contracts the tests here pin down at unit scale:

* At small clusters the hierarchical mode must be a drop-in for the flat
  sweep: identical decisions, or a final modelled step time within the
  bench suite's quality epsilon.
* Escalation is a *superset* search: the intra-node phase's best
  candidate is carried into the cross-cluster sweep as the bar, so the
  returned move can never be worse than any intra-node candidate — the
  short-circuit can only ever skip work, not skip quality.

The node-blocked :class:`~repro.cluster.bandwidth.BandwidthModel` that
makes the hierarchical sweep O(G) per row is covered here too: every
query of the implicit three-class representation must agree with the
explicit dense matrix it replaces.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.bandwidth import BandwidthModel
from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import (
    ClusterConfig,
    HIERARCHICAL_AUTO_THRESHOLD,
    MoEModelConfig,
    WorkloadConfig,
    auto_slots_per_gpu,
    resolve_placement_search,
)
from repro.core.cost_model import MoECostModel
from repro.core.migration import MigrationPlanner
from repro.core.placement import Placement
from repro.core.policy import PolicyMaker
from repro.core.primitives import Migrate
from repro.workload.synthetic import DriftingRoutingGenerator

QUALITY_RTOL = 0.05


def _replay(cost_model, topology, trace, slots, placement_search):
    """Mirror of the scale bench's planner replay: policy + migrate per
    step, decisions applied, final configuration priced via the delta
    evaluator."""
    num_experts = cost_model.model.num_experts
    policy = PolicyMaker(
        cost_model,
        use_delta=True,
        topology=topology,
        placement_search=placement_search,
    )
    migration = MigrationPlanner(
        cost_model,
        topology,
        use_delta=True,
        memo=policy.memo,
        placement_search=placement_search,
        delta=policy.delta,
    )
    placement = Placement.balanced(num_experts, topology.num_gpus, slots)
    decisions = []
    for step in range(trace.num_steps):
        assignment = trace.step(step)
        decision = policy.make_plan(assignment, placement)
        for action in decision.actions:
            action.apply(placement)
        moves = migration.plan(assignment, placement)
        for move in moves:
            move.apply(placement)
        decisions.append((decision.actions, tuple(moves)))
    final = float(
        policy.delta.rebase(trace.step(trace.num_steps - 1), placement)
    )
    return decisions, final, int(policy.delta.fallbacks)


class TestSmallScaleEquivalence:
    """At <= 64 devices hierarchical must be a drop-in for flat."""

    @pytest.mark.parametrize("num_nodes,gpus_per_node", [(2, 4), (4, 8)])
    def test_decisions_match_or_quality_within_epsilon(
        self, num_nodes, gpus_per_node
    ):
        num_gpus = num_nodes * gpus_per_node
        num_experts = 2 * num_gpus
        topology = ClusterTopology(
            ClusterConfig(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
        )
        model = MoEModelConfig(
            name=f"hier-{num_gpus}g",
            num_layers=2,
            d_model=512,
            d_ffn=2048,
            num_experts=num_experts,
        )
        profile = Profiler(topology, noise=0.02, seed=0).profile(model)
        cost_model = MoECostModel(profile, model)
        trace = DriftingRoutingGenerator(
            num_experts,
            num_gpus,
            WorkloadConfig(
                tokens_per_step=4096 * num_gpus,
                num_steps=6,
                skew=1.3,
                seed=0,
            ),
        ).generate()
        slots = auto_slots_per_gpu(num_experts, num_gpus)
        flat, flat_time, flat_fb = _replay(
            cost_model, topology, trace, slots, "flat"
        )
        hier, hier_time, hier_fb = _replay(
            cost_model, topology, trace, slots, "hierarchical"
        )
        assert flat_fb == 0 and hier_fb == 0
        assert flat == hier or hier_time <= flat_time * (1.0 + QUALITY_RTOL)

    def test_auto_resolution_respects_threshold(self):
        assert resolve_placement_search(HIERARCHICAL_AUTO_THRESHOLD) == "flat"
        assert (
            resolve_placement_search(HIERARCHICAL_AUTO_THRESHOLD + 1)
            == "hierarchical"
        )
        assert resolve_placement_search(4096, "flat") == "flat"
        assert resolve_placement_search(8, "hierarchical") == "hierarchical"


def _perturbed_placement(rng, num_experts, num_gpus, slots):
    """A legal placement a few random exchanges away from balanced."""
    placement = Placement.balanced(num_experts, num_gpus, slots)
    for _ in range(rng.integers(0, 6)):
        counts = placement.counts_view
        src, dst = rng.choice(num_gpus, size=2, replace=False)
        on_src = np.flatnonzero(counts[:, src])
        on_dst = np.flatnonzero(counts[:, dst])
        expert = int(rng.choice(on_src))
        partner = int(rng.choice(on_dst))
        if expert == partner:
            continue
        Migrate(
            expert_a=expert, gpu_a=int(src), expert_b=partner, gpu_b=int(dst)
        ).apply(placement)
    return placement


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_escalation_never_skips_viable_intra_candidate(seed):
    """The returned move is never worse than ANY intra-node candidate.

    The intra-node phase's best is carried into the cross-cluster sweep
    as the bar, so whatever ``_best_move`` returns must price at or below
    the full intra-node pool's minimum; and when it returns ``None``, no
    intra-node candidate can improve on the baseline.
    """
    rng = np.random.default_rng(seed)
    num_experts, num_gpus, slots = 8, 8, 2
    topology = ClusterTopology(ClusterConfig(num_nodes=2, gpus_per_node=4))
    model = MoEModelConfig(
        name="hier-prop",
        num_layers=2,
        d_model=256,
        d_ffn=1024,
        num_experts=num_experts,
    )
    profile = Profiler(topology, noise=0.0, seed=0).profile(model)
    cost_model = MoECostModel(profile, model)
    planner = MigrationPlanner(
        cost_model, topology, use_delta=True,
        placement_search="hierarchical",
    )
    placement = _perturbed_placement(rng, num_experts, num_gpus, slots)
    assignment = rng.integers(
        0, 5000, size=(num_experts, num_gpus)
    ).astype(np.int64)

    baseline = planner._delta.rebase(assignment, placement)
    per_replica = planner._per_replica_loads(assignment, placement)
    gpu_loads = planner._weighted_gpu_loads(per_replica, placement)
    sources = planner._candidate_sources(per_replica, placement, gpu_loads)
    intra_pool = planner._expand_exchanges(
        placement,
        [
            (
                expert,
                src,
                planner._node_targets(placement, gpu_loads, expert, src),
            )
            for expert, src in sources
        ],
    )
    best_intra = float("inf")
    if intra_pool:
        pairs = np.array(
            [(a.expert_a, a.gpu_a, a.expert_b, a.gpu_b) for a in intra_pool]
        )
        best_intra = float(
            planner._delta.exchange_candidate_times(placement, pairs).min()
        )

    move = planner._best_move(assignment, placement)
    if move is None:
        assert best_intra >= baseline - 1e-12
    else:
        pair = np.array(
            [[move.expert_a, move.gpu_a, move.expert_b, move.gpu_b]]
        )
        move_time = float(
            planner._delta.exchange_candidate_times(placement, pair)[0]
        )
        assert move_time <= best_intra + 1e-9
        assert move_time <= baseline - 1e-12


class TestBandwidthModelEquivalence:
    """The implicit three-class model must agree with its dense view."""

    @pytest.fixture
    def blocked(self) -> BandwidthModel:
        return BandwidthModel.blocked(
            num_nodes=3, gpus_per_node=4,
            local=400e9, intra=150e9, inter=25e9,
        )

    @pytest.fixture
    def dense(self, blocked: BandwidthModel) -> BandwidthModel:
        return BandwidthModel.from_dense(blocked.dense())

    def test_links_match_everywhere(self, blocked, dense):
        for src in range(blocked.num_gpus):
            for dst in range(blocked.num_gpus):
                assert blocked.link(src, dst) == dense.link(src, dst)

    def test_submatrix_matches(self, blocked, dense):
        rng = np.random.default_rng(0)
        rows = rng.choice(blocked.num_gpus, size=5, replace=False)
        cols = rng.choice(blocked.num_gpus, size=7, replace=True)
        np.testing.assert_array_equal(
            blocked.submatrix(rows, cols), dense.submatrix(rows, cols)
        )

    def test_inv_diag_matches(self, blocked, dense):
        np.testing.assert_allclose(
            blocked.inv_diag(), dense.inv_diag(), rtol=1e-15
        )

    def test_inv_offdiag_apply_matches(self, blocked, dense):
        rng = np.random.default_rng(1)
        spill = rng.uniform(0.0, 1e6, size=(6, blocked.num_gpus))
        np.testing.assert_allclose(
            blocked.inv_offdiag_apply(spill),
            dense.inv_offdiag_apply(spill),
            rtol=1e-12,
        )
        row = spill[0]
        np.testing.assert_allclose(
            blocked.inv_offdiag_apply(row),
            dense.inv_offdiag_apply(row),
            rtol=1e-12,
        )

    def test_min_offdiag_matches(self, blocked, dense):
        rng = np.random.default_rng(2)
        for size in (2, 3, 6):
            group = rng.choice(blocked.num_gpus, size=size, replace=False)
            assert blocked.min_offdiag(group) == dense.min_offdiag(group)
        # Repeated devices contribute a local-speed "pair".
        assert blocked.min_offdiag([1, 1]) == dense.min_offdiag([1, 1])
