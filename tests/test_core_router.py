"""Unit tests for flexible token routing (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.router import FlexibleTokenRouter, validate_conservation
from repro.exceptions import RoutingError


@pytest.fixture
def router() -> FlexibleTokenRouter:
    return FlexibleTokenRouter()


class TestConservation:
    def test_every_token_routed_once(self, router, rng):
        placement = Placement.balanced(8, 4, 2)
        assignment = rng.integers(0, 500, (8, 4))
        plan = router.route(assignment, placement)
        validate_conservation(assignment, plan)

    def test_zero_assignment(self, router):
        placement = Placement.balanced(4, 4, 2)
        plan = router.route(np.zeros((4, 4), dtype=int), placement)
        assert plan.routes.sum() == 0
        assert plan.locality_fraction == 1.0


class TestLocalityFirst:
    def test_local_tokens_stay_when_capacity_allows(self, router):
        # Expert 0 on every GPU: all tokens route locally.
        counts = np.ones((1, 4), dtype=np.int64)
        placement = Placement(counts, 1)
        assignment = np.array([[10, 10, 10, 10]])
        plan = router.route(assignment, placement)
        assert plan.locality_fraction == 1.0

    def test_spill_goes_remote(self, router):
        # Expert 0 only on GPU 0: GPU 1's tokens must travel.
        counts = np.array([[1, 0], [0, 1]], dtype=np.int64)
        placement = Placement(counts, 1)
        assignment = np.array([[4, 6], [0, 0]])
        plan = router.route(assignment, placement)
        assert plan.routes[0, 1, 0] == 6
        assert plan.routes[0, 0, 0] == 4


class TestCapacity:
    def test_per_vexpert_capacity_respected(self, router):
        # Expert 0: 2 replicas; 100 tokens -> cap 50 per replica.
        counts = np.array([[1, 1], [1, 1]], dtype=np.int64)
        placement = Placement(counts, 2)
        assignment = np.array([[100, 0], [0, 0]])
        plan = router.route(assignment, placement)
        arrivals = plan.arrivals[0]
        assert arrivals.max() <= 50
        assert plan.capacities[0] == 50

    def test_packed_replicas_get_double_share(self, router):
        counts = np.array([[2, 1]], dtype=np.int64)
        placement = Placement(counts, 2)
        assignment = np.array([[0, 90]])
        plan = router.route(assignment, placement)
        # cap = 30; GPU 0 holds 2 vExperts -> up to 60; GPU 1 keeps 30 local.
        assert plan.arrivals[0, 1] == 30
        assert plan.arrivals[0, 0] == 60

    def test_proportional_spill(self, router):
        # Source GPU 2 spills to GPUs 0 and 1 proportional to availability.
        counts = np.array([[2, 1, 0]], dtype=np.int64)
        placement = Placement(counts, 2)
        assignment = np.array([[0, 0, 90]])
        plan = router.route(assignment, placement)
        assert plan.routes[0, 2, 0] == 60
        assert plan.routes[0, 2, 1] == 30


class TestValidation:
    def test_shape_mismatch(self, router, placement):
        with pytest.raises(RoutingError):
            router.route(np.zeros((3, 3), dtype=int), placement)

    def test_negative_counts(self, router):
        placement = Placement.balanced(2, 2, 1)
        with pytest.raises(RoutingError):
            router.route(np.array([[-1, 0], [0, 0]]), placement)

    def test_conservation_checker_catches_loss(self, router):
        placement = Placement.balanced(2, 2, 1)
        assignment = np.array([[5, 5], [0, 0]])
        plan = router.route(assignment, placement)
        tampered = np.array([[6, 5], [0, 0]])
        with pytest.raises(RoutingError):
            validate_conservation(tampered, plan)


class TestFractionalRelaxation:
    def test_conserves_tokens(self, router, rng):
        placement = Placement.balanced(8, 4, 2)
        assignment = rng.integers(0, 500, (8, 4))
        routes = router.route_fractional(assignment, placement)
        assert np.allclose(routes.sum(axis=2), assignment)

    def test_close_to_integer_routing(self, router, rng):
        placement = Placement.balanced(8, 4, 3)
        assignment = rng.integers(0, 2000, (8, 4))
        integer = router.route(assignment, placement)
        frac = router.route_fractional(assignment, placement)
        per_gpu_diff = np.abs(
            integer.gpu_loads - frac.sum(axis=(0, 1))
        )
        assert per_gpu_diff.max() <= 8  # rounding differences only

    def test_capacity_never_exceeded_fractionally(self, router):
        counts = np.array([[1, 1]], dtype=np.int64)
        placement = Placement(counts, 1)
        assignment = np.array([[100, 0]])
        routes = router.route_fractional(assignment, placement)
        arrivals = routes.sum(axis=1)[0]
        assert arrivals.max() <= 50 + 1e-9


class TestPlanProperties:
    def test_gpu_loads_match_arrivals(self, router, rng):
        placement = Placement.balanced(8, 4, 2)
        assignment = rng.integers(0, 300, (8, 4))
        plan = router.route(assignment, placement)
        assert np.array_equal(plan.gpu_loads, plan.arrivals.sum(axis=0))

    def test_tokens_for(self, router):
        placement = Placement.balanced(2, 2, 1)
        assignment = np.array([[5, 3], [2, 2]])
        plan = router.route(assignment, placement)
        assert plan.tokens_for(0) == 8
        assert plan.tokens_for(1) == 4
