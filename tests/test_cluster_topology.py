"""Unit tests for the cluster topology and device model."""

import numpy as np
import pytest

from repro.cluster.device import Device
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, DeviceSpec, MoEModelConfig
from repro.exceptions import TopologyError


class TestDevice:
    def test_memory_capacity_positive(self):
        model = MoEModelConfig("m", 2, 64, 256, 4)
        device = Device(0, 0, 0, DeviceSpec())
        assert device.expert_memory_capacity(model) >= 1

    def test_str(self):
        device = Device(9, 1, 1, DeviceSpec())
        assert "gpu9" in str(device)


class TestClusterTopology:
    def test_device_enumeration(self, topology):
        assert topology.num_gpus == 8
        assert [d.index for d in topology.devices] == list(range(8))
        assert topology.devices[5].node == 1
        assert topology.devices[5].local_rank == 1

    def test_same_node(self, topology):
        assert topology.same_node(0, 3)
        assert not topology.same_node(0, 4)

    def test_bandwidth_intra_vs_inter(self, topology, cluster_config):
        assert topology.bandwidth(0, 1) == cluster_config.intra_node_bandwidth
        assert topology.bandwidth(0, 4) == cluster_config.inter_node_bandwidth
        assert topology.bandwidth(0, 0) == ClusterTopology.LOCAL_COPY_BANDWIDTH

    def test_bandwidth_symmetric(self, topology):
        bw = topology.bandwidth_matrix
        assert np.array_equal(bw, bw.T)

    def test_latency_zero_on_diagonal(self, topology):
        assert topology.latency(2, 2) == 0.0
        assert topology.latency(0, 4) > topology.latency(0, 1)

    def test_gpus_on_node(self, topology):
        assert topology.gpus_on_node(1) == (4, 5, 6, 7)
        with pytest.raises(TopologyError):
            topology.gpus_on_node(5)

    def test_nodes_spanned(self, topology):
        assert topology.nodes_spanned([0, 1]) == (0,)
        assert topology.nodes_spanned([1, 6]) == (0, 1)

    def test_min_group_bandwidth(self, topology, cluster_config):
        intra = topology.min_group_bandwidth([0, 1, 2])
        inter = topology.min_group_bandwidth([0, 1, 5])
        assert intra == cluster_config.intra_node_bandwidth
        assert inter == cluster_config.inter_node_bandwidth

    def test_min_group_bandwidth_singleton(self, topology):
        assert (
            topology.min_group_bandwidth([3])
            == ClusterTopology.LOCAL_COPY_BANDWIDTH
        )

    def test_min_group_bandwidth_empty_rejected(self, topology):
        with pytest.raises(TopologyError):
            topology.min_group_bandwidth([])

    def test_unknown_gpu_rejected(self, topology):
        with pytest.raises(TopologyError):
            topology.bandwidth(0, 99)
        with pytest.raises(TopologyError):
            topology.device(-1)
