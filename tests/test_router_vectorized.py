"""Vectorized router vs the seed reference implementation.

The two may place individual spill tokens on different replicas — both
orders are valid under the capacity contract — so the agreement tests
check the routing *contract* (conservation, capacities, locality, replica
membership) plus the aggregate quantities that feed the cost models.
"""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.router import (
    FlexibleTokenRouter,
    ReferenceTokenRouter,
    validate_conservation,
)


def random_cases(rng, count=25):
    for _ in range(count):
        num_gpus = int(rng.integers(1, 9))
        slots = int(rng.integers(1, 4))
        num_experts = int(rng.integers(1, min(12, num_gpus * slots) + 1))
        placement = Placement.balanced(num_experts, num_gpus, slots)
        assignment = rng.integers(0, 5000, (num_experts, num_gpus))
        yield assignment, placement


class TestAgreementWithReference:
    def test_contract_matches(self, rng):
        fast = FlexibleTokenRouter()
        ref = ReferenceTokenRouter()
        for assignment, placement in random_cases(rng):
            fast_plan = fast.route(assignment, placement)
            ref_plan = ref.route(assignment, placement)
            validate_conservation(assignment, fast_plan)
            np.testing.assert_array_equal(
                fast_plan.capacities, ref_plan.capacities
            )
            counts = placement.counts
            caps = counts * fast_plan.capacities[:, None]
            assert (fast_plan.arrivals <= caps).all()
            assert (fast_plan.arrivals[counts == 0] == 0).all()

    def test_local_routing_identical(self, rng):
        # Locality-first is deterministic: the diagonal (tokens that never
        # left their source) must match the reference exactly.
        fast = FlexibleTokenRouter()
        ref = ReferenceTokenRouter()
        diag_checked = 0
        for assignment, placement in random_cases(rng):
            fast_routes = fast.route(assignment, placement).routes
            ref_routes = ref.route(assignment, placement).routes
            num_gpus = placement.num_gpus
            idx = np.arange(num_gpus)
            np.testing.assert_array_equal(
                fast_routes[:, idx, idx], ref_routes[:, idx, idx]
            )
            diag_checked += 1
        assert diag_checked > 0

    def test_locality_fraction_identical(self, rng):
        fast = FlexibleTokenRouter()
        ref = ReferenceTokenRouter()
        for assignment, placement in random_cases(rng, count=10):
            assert fast.route(assignment, placement).locality_fraction == (
                ref.route(assignment, placement).locality_fraction
            )

    def test_reference_passes_conservation(self, rng):
        ref = ReferenceTokenRouter()
        for assignment, placement in random_cases(rng, count=10):
            validate_conservation(assignment, ref.route(assignment, placement))


class TestBatchedSpillScatter:
    def test_heavy_spill_single_destination(self):
        # Everything must spill from GPU 1 to GPU 0.
        counts = np.array([[1, 0]], dtype=np.int64)
        placement = Placement(counts, 1)
        assignment = np.array([[0, 77]])
        plan = FlexibleTokenRouter().route(assignment, placement)
        assert plan.routes[0, 1, 0] == 77

    def test_spill_spread_is_proportional_within_one(self):
        # 3 destinations with capacity 2:1:1 of the remainder.
        counts = np.array([[2, 1, 1, 0]], dtype=np.int64)
        placement = Placement(counts, 2)
        assignment = np.array([[0, 0, 0, 100]])
        plan = FlexibleTokenRouter().route(assignment, placement)
        cap = plan.capacities[0]
        spread = plan.routes[0, 3]
        assert spread.sum() == 100
        # Proportional target is (2, 1, 1)/4 of 100 capped by capacity.
        assert spread[0] >= spread[1] >= 0
        assert (plan.arrivals[0] <= cap * counts[0]).all()

    def test_many_experts_spilling_at_once(self, rng):
        placement = Placement.balanced(32, 8, 8)
        # Concentrate every expert's tokens on one GPU to force spill.
        assignment = np.zeros((32, 8), dtype=np.int64)
        assignment[:, 0] = rng.integers(1000, 9000, 32)
        plan = FlexibleTokenRouter().route(assignment, placement)
        validate_conservation(assignment, plan)
        caps = placement.counts * plan.capacities[:, None]
        assert (plan.arrivals <= caps).all()


class TestFractionalBatched:
    def test_matches_manual_per_expert_computation(self, rng):
        router = FlexibleTokenRouter()
        for assignment, placement in random_cases(rng, count=10):
            routes = router.route_fractional(
                assignment.astype(float), placement
            )
            counts = placement.counts
            for e in range(placement.num_experts):
                total = assignment[e].sum()
                if total == 0:
                    assert routes[e].sum() == 0
                    continue
                capacity = counts[e] * (total / counts[e].sum())
                local = np.minimum(assignment[e], capacity)
                spill = assignment[e] - local
                avail = capacity - local
                expected = np.zeros_like(routes[e])
                np.fill_diagonal(expected, local)
                if spill.sum() > 0:
                    expected += np.outer(spill, avail / avail.sum())
                np.testing.assert_allclose(routes[e], expected, atol=1e-9)
