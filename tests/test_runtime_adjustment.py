"""Unit tests for the adjustment queue (merge / parallelize / best-effort)."""

import pytest

from repro.core.primitives import Expand, Migrate, Shrink
from repro.exceptions import SimulationError
from repro.runtime.adjustment import AdjustmentQueue


@pytest.fixture
def queue(model_config, collectives) -> AdjustmentQueue:
    return AdjustmentQueue(model_config, collectives)


class TestDrain:
    def test_empty_drain(self, queue):
        report = queue.drain(overlap_window=1.0)
        assert report.executed == 0
        assert report.transfer_time == 0.0
        assert report.blocking_time == 0.0

    def test_shrink_costs_nothing(self, queue):
        queue.enqueue([Shrink(0, 0), Shrink(1, 3)])
        report = queue.drain(overlap_window=0.0)
        assert report.transfer_time == 0.0

    def test_intra_gpu_expand_costs_nothing(self, queue):
        queue.enqueue([Expand(expert=0, gpu=2, source_gpu=2)])
        report = queue.drain(overlap_window=0.0)
        assert report.transfer_time == 0.0

    def test_fully_overlapped_has_zero_blocking(self, queue):
        queue.enqueue([Expand(expert=0, gpu=4, source_gpu=0)])
        report = queue.drain(overlap_window=100.0, best_effort=True)
        assert report.transfer_time > 0
        assert report.blocking_time == 0.0

    def test_synchronous_mode_blocks_fully(self, queue):
        queue.enqueue([Expand(expert=0, gpu=4, source_gpu=0)])
        report = queue.drain(overlap_window=100.0, best_effort=False)
        assert report.blocking_time == pytest.approx(report.transfer_time)

    def test_partial_overlap(self, queue):
        queue.enqueue([Expand(expert=0, gpu=4, source_gpu=0)])
        tiny_window = 1e-9
        report = queue.drain(overlap_window=tiny_window, best_effort=True)
        assert report.blocking_time == pytest.approx(
            report.transfer_time - tiny_window
        )

    def test_extra_stream_time_counts(self, queue):
        report = queue.drain(overlap_window=0.0, extra_stream_time=0.5)
        assert report.transfer_time == pytest.approx(0.5)
        assert report.blocking_time == pytest.approx(0.5)

    def test_queue_emptied_after_drain(self, queue):
        queue.enqueue([Shrink(0, 0)])
        assert queue.pending_count == 1
        queue.drain(overlap_window=0.0)
        assert queue.pending_count == 0

    def test_negative_window_rejected(self, queue):
        with pytest.raises(SimulationError):
            queue.drain(overlap_window=-1.0)


class TestMergeAndParallel:
    def test_same_link_transfers_merged(self, queue):
        queue.enqueue(
            [
                Expand(expert=0, gpu=4, source_gpu=0),
                Expand(expert=1, gpu=4, source_gpu=0),
            ]
        )
        report = queue.drain(overlap_window=0.0)
        assert report.merged == 1
        assert report.waves == 1

    def test_disjoint_transfers_run_in_one_wave(self, queue, collectives, model_config):
        queue.enqueue(
            [
                Expand(expert=0, gpu=4, source_gpu=0),
                Expand(expert=1, gpu=5, source_gpu=1),
            ]
        )
        report = queue.drain(overlap_window=0.0)
        one = collectives.p2p_time(model_config.expert_state_bytes, 0, 4)
        assert report.waves == 1
        assert report.transfer_time == pytest.approx(one, rel=0.05)

    def test_conflicting_transfers_serialize(self, model_config, collectives):
        queue = AdjustmentQueue(model_config, collectives, merge=False)
        queue.enqueue(
            [
                Expand(expert=0, gpu=4, source_gpu=0),
                Expand(expert=1, gpu=5, source_gpu=4),
            ]
        )
        report = queue.drain(overlap_window=0.0)
        assert report.waves == 2

    def test_migrate_generates_two_transfers(self, queue):
        queue.enqueue([Migrate(expert_a=0, gpu_a=0, expert_b=1, gpu_b=4)])
        report = queue.drain(overlap_window=0.0)
        # both directions share endpoints: two waves unless merged (they
        # are opposite directions so cannot merge)
        assert report.executed == 1
        assert report.transfer_time > 0

    def test_parallelize_disabled_serializes_everything(
        self, model_config, collectives
    ):
        queue = AdjustmentQueue(
            model_config, collectives, parallelize=False
        )
        queue.enqueue(
            [
                Expand(expert=0, gpu=4, source_gpu=0),
                Expand(expert=1, gpu=5, source_gpu=1),
            ]
        )
        report = queue.drain(overlap_window=0.0)
        assert report.waves == 2

    def test_bytes_accounting(self, queue, model_config):
        queue.enqueue([Expand(expert=0, gpu=4, source_gpu=0)])
        queue.drain(overlap_window=0.0)
        assert queue.total_transferred_bytes == model_config.expert_state_bytes
