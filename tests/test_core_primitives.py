"""Unit tests for the Expand / Shrink / Migrate primitives."""

import pytest

from repro.core.placement import Placement
from repro.core.primitives import (
    Expand,
    Migrate,
    Shrink,
    apply_actions,
    can_merge,
    can_parallelize,
)
from repro.exceptions import PlacementError


@pytest.fixture
def four_by_four() -> Placement:
    return Placement.balanced(4, 4, 2)


class TestExpand:
    def test_apply_adds_replica(self, four_by_four):
        p = four_by_four
        gpu = p.gpus_of(1)[0]
        Shrink(expert=1, gpu=gpu).apply(p)
        source = p.gpus_of(0)[0]
        Expand(expert=0, gpu=gpu, source_gpu=source).apply(p)
        assert p.count(0, gpu) >= 1

    def test_source_must_hold_expert(self, four_by_four):
        p = four_by_four
        gpu = p.gpus_of(1)[0]
        Shrink(expert=1, gpu=gpu).apply(p)
        bad_source = next(
            g for g in range(4) if p.count(0, g) == 0
        )
        with pytest.raises(PlacementError):
            Expand(expert=0, gpu=gpu, source_gpu=bad_source).apply(p)

    def test_intra_gpu_expand_free(self, model_config, collectives):
        action = Expand(expert=0, gpu=1, source_gpu=1)
        assert action.transfer_bytes(model_config) == 0
        assert action.cost(model_config, collectives) == 0.0

    def test_inter_gpu_expand_costs_state_transfer(
        self, model_config, collectives
    ):
        action = Expand(expert=0, gpu=4, source_gpu=0)
        assert action.transfer_bytes(model_config) == model_config.expert_state_bytes
        assert action.cost(model_config, collectives) > 0


class TestShrink:
    def test_zero_cost(self, model_config, collectives):
        action = Shrink(expert=0, gpu=0)
        assert action.transfer_bytes(model_config) == 0
        assert action.cost(model_config, collectives) == 0.0

    def test_cannot_remove_last_replica(self):
        p = Placement.expert_parallel(4, 4)
        with pytest.raises(PlacementError):
            Shrink(expert=0, gpu=0).apply(p)


class TestMigrate:
    def test_swap_applies(self, four_by_four):
        p = four_by_four
        e_a, e_b = 0, 1
        gpu_a = p.gpus_of(e_a)[0]
        gpu_b = next(g for g in p.gpus_of(e_b) if g != gpu_a)
        Migrate(expert_a=e_a, gpu_a=gpu_a, expert_b=e_b, gpu_b=gpu_b).apply(p)
        assert p.count(e_a, gpu_b) >= 1
        assert p.count(e_b, gpu_a) >= 1

    def test_cost_is_slower_direction(self, model_config, collectives):
        action = Migrate(expert_a=0, gpu_a=0, expert_b=1, gpu_b=4)
        expected = collectives.p2p_time(
            model_config.expert_state_bytes, 0, 4
        )
        assert action.cost(model_config, collectives) == pytest.approx(expected)

    def test_transfer_bytes_both_directions(self, model_config):
        action = Migrate(expert_a=0, gpu_a=0, expert_b=1, gpu_b=4)
        assert action.transfer_bytes(model_config) == (
            2 * model_config.expert_state_bytes
        )


class TestApplyActions:
    def test_sequence_validates_final_state(self, four_by_four):
        p = four_by_four
        gpu = p.gpus_of(3)[0]
        source = p.gpus_of(0)[0]
        apply_actions(
            p,
            [Shrink(expert=3, gpu=gpu), Expand(expert=0, gpu=gpu, source_gpu=source)],
        )
        assert p.counts.sum() == 8  # slot count conserved


class TestQueueAnalysis:
    def test_merge_same_endpoints(self):
        a = Expand(expert=0, gpu=3, source_gpu=1)
        b = Expand(expert=5, gpu=3, source_gpu=1)
        assert can_merge(a, b)

    def test_no_merge_for_shrink(self):
        assert not can_merge(Shrink(0, 1), Shrink(2, 1))

    def test_parallelize_disjoint_endpoints(self):
        a = Expand(expert=0, gpu=1, source_gpu=0)
        b = Expand(expert=1, gpu=3, source_gpu=2)
        assert can_parallelize(a, b)

    def test_no_parallelize_shared_endpoint(self):
        a = Expand(expert=0, gpu=1, source_gpu=0)
        b = Migrate(expert_a=1, gpu_a=1, expert_b=2, gpu_b=2)
        assert not can_parallelize(a, b)

    def test_shrink_always_parallel_safe(self):
        a = Shrink(expert=0, gpu=1)
        b = Expand(expert=1, gpu=1, source_gpu=0)
        assert can_parallelize(a, b)
