"""The composed scenario (serving + elasticity + budget) and its CLI."""

import json

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.sim.composed import (
    ComposedScenarioConfig,
    build_composed_scenario,
    composed_scenario_run,
)

#: One CI-scale run shared by the assertions below (the scenario is
#: deterministic, so there is nothing to gain from re-running it).
SMOKE_SEED = 0


@pytest.fixture(scope="module")
def smoke_report():
    return composed_scenario_run(smoke=True, seed=SMOKE_SEED)


class TestComposedScenarioConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ComposedScenarioConfig(num_requests=0)
        with pytest.raises(ConfigurationError):
            ComposedScenarioConfig(num_failures=8, num_gpus=8)
        with pytest.raises(ConfigurationError):
            ComposedScenarioConfig(budget_bandwidth=0.0)

    def test_smoke_uses_shared_policy(self):
        config = ComposedScenarioConfig(num_requests=400, num_failures=2)
        smoke = config.smoke()
        assert smoke.num_requests == 150  # floor of the quarter-scaling
        assert smoke.num_failures == 1
        assert smoke.num_gpus == config.num_gpus  # structure untouched


class TestComposedScenario:
    def test_smoke_run_is_ok(self, smoke_report):
        assert smoke_report["ok"] is True
        assert smoke_report["regression"] is False

    def test_all_three_sources_fired(self, smoke_report):
        """The composition is genuine: every source did observable work."""
        assert smoke_report["serving"]["requests_served"] > 0
        assert smoke_report["events_applied"] == 2  # one fail + one recover
        kinds = [ev["kind"] for ev in smoke_report["cluster_events"]]
        assert kinds == ["fail", "recover"]
        assert smoke_report["budget_grants"] > 0
        assert smoke_report["budget_committed_actions"] > 0

    def test_failures_are_time_keyed_not_batch_keyed(self, smoke_report):
        """The old loops quantized elasticity to batch indices; the
        kernel delivers it at wall-clock instants."""
        fail = smoke_report["cluster_events"][0]
        assert fail["time_s"] > 0.0
        assert fail["time_s"] != int(fail["time_s"])

    def test_deferred_streams_commit_only_through_budget(self, smoke_report):
        # The engine-wide committed counter is the authoritative total
        # and must reconcile exactly with the per-channel counters:
        # budget-source commits plus in-step serving commits.
        assert smoke_report["placement_actions_reconciled"] is True
        assert (
            smoke_report["placement_actions_total"]
            == smoke_report["engine_committed_actions"]
        )
        assert (
            smoke_report["placement_actions_total"]
            == smoke_report["budget_committed_actions"]
            + smoke_report["serving"]["placement_actions"]
        )
        # In-step commits are deferred (stream_budget=0), so the serving
        # report's own action counter stays at zero while the budget
        # channel carries every committed action.
        assert smoke_report["serving"]["placement_actions"] == 0
        assert smoke_report["budget_committed_actions"] > 0

    def test_same_seed_same_report(self, smoke_report):
        again = composed_scenario_run(smoke=True, seed=SMOKE_SEED)
        assert again == smoke_report

    def test_whole_stream_accounted(self, smoke_report):
        serving = smoke_report["serving"]
        assert smoke_report["requests_unaccounted"] == 0
        assert (
            serving["requests_served"] + serving["requests_rejected"] == 150
        )

    def test_overload_that_strands_requests_is_not_ok(self):
        """A server that falls hopelessly behind must not report a clean
        run: requests stranded at the horizon flip the ok marker."""
        report = composed_scenario_run(
            config=ComposedScenarioConfig(
                num_requests=120, load=3.0, num_failures=1, seed=0
            )
        )
        assert report["requests_unaccounted"] > 0
        assert report["ok"] is False
        assert report["regression"] is True

    def test_explicit_small_request_count_survives_smoke(self):
        config = ComposedScenarioConfig(num_requests=100).smoke()
        assert config.num_requests == 100  # never scaled UP to the floor

    def test_scenario_spec_shape(self):
        handles = build_composed_scenario(
            ComposedScenarioConfig(seed=3).smoke()
        )
        scenario = handles.scenario
        assert scenario.name == "serving+elasticity+budget"
        assert len(scenario.sources) == 3
        assert scenario.duration is not None and scenario.duration > 0
        assert scenario.seed == 3


class TestScenarioCli:
    def test_scenario_smoke_json_writes_report(self, capsys, tmp_path):
        out = tmp_path / "composed.json"
        code = main(
            ["scenario", "--smoke", "--json", "--output", str(out)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        on_disk = json.loads(out.read_text())
        assert on_disk["ok"] is True
        assert on_disk["suite"] == "composed_scenario"

    def test_scenario_human_readable(self, capsys, tmp_path):
        out = tmp_path / "composed.json"
        code = main(["scenario", "--smoke", "--output", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "scenario smoke: OK" in captured
        assert "one kernel, three sources" in captured

    def test_scenario_unwritable_output_fails_fast(self, capsys, tmp_path):
        code = main(
            ["scenario", "--smoke", "--output", str(tmp_path)]  # a directory
        )
        assert code == 2
        assert "cannot write report" in capsys.readouterr().err
