"""Unit tests for NN building blocks, including numeric gradient checks."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.model.layers import (
    GELU,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    softmax,
)


def numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = f()
        flat[i] = old - eps
        down = f()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_input_gradient(module: Module, x: np.ndarray, atol=1e-6):
    """Analytic dL/dx vs numeric, with L = sum(forward(x) * w)."""
    rng = np.random.default_rng(0)
    w = rng.normal(0, 1, module.forward(x.copy()).shape)

    def loss():
        return float((module.forward(x) * w).sum())

    out = module.forward(x)
    analytic = module.backward(w)
    numeric = numeric_grad(loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestParameterAndModule:
    def test_zero_grad(self, rng):
        p = Parameter(rng.normal(0, 1, (3, 3)))
        p.grad += 1.0
        p.zero_grad()
        assert (p.grad == 0).all()

    def test_parameters_recurse(self, rng):
        seq = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        assert len(list(seq.parameters())) == 4
        assert seq.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 6, rng)
        assert layer.forward(rng.normal(0, 1, (5, 4))).shape == (5, 6)

    def test_forward_batched_leading_dims(self, rng):
        layer = Linear(4, 6, rng)
        assert layer.forward(rng.normal(0, 1, (2, 3, 4))).shape == (2, 3, 6)

    def test_input_gradient(self, rng):
        check_input_gradient(Linear(4, 3, rng), rng.normal(0, 1, (5, 4)))

    def test_weight_gradient(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(0, 1, (4, 3))
        w = rng.normal(0, 1, (4, 2))

        def loss():
            return float((layer.forward(x) * w).sum())

        layer.forward(x)
        layer.zero_grad()
        layer.backward(w)
        numeric = numeric_grad(loss, layer.weight.data)
        np.testing.assert_allclose(layer.weight.grad, numeric, atol=1e-6)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ModelError):
            Linear(4, 3, rng).forward(np.zeros((2, 5)))

    def test_backward_before_forward_rejected(self, rng):
        with pytest.raises(ModelError):
            Linear(4, 3, rng).backward(np.zeros((2, 3)))


class TestActivations:
    def test_relu_gradient(self, rng):
        check_input_gradient(ReLU(), rng.normal(0, 1, (6, 4)) + 0.1)

    def test_gelu_gradient(self, rng):
        check_input_gradient(GELU(), rng.normal(0, 1, (6, 4)), atol=1e-5)

    def test_relu_clips_negative(self):
        relu = ReLU()
        assert (relu.forward(np.array([-1.0, 2.0])) == [0.0, 2.0]).all()


class TestLayerNorm:
    def test_output_normalized(self, rng):
        ln = LayerNorm(8)
        out = ln.forward(rng.normal(3, 5, (10, 8)))
        np.testing.assert_allclose(out.mean(axis=-1), 0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1, atol=1e-4)

    def test_input_gradient(self, rng):
        check_input_gradient(LayerNorm(5), rng.normal(0, 1, (4, 5)), atol=1e-5)

    def test_gamma_beta_gradients(self, rng):
        ln = LayerNorm(4)
        x = rng.normal(0, 2, (6, 4))
        w = rng.normal(0, 1, (6, 4))

        def loss():
            return float((ln.forward(x) * w).sum())

        ln.forward(x)
        ln.zero_grad()
        ln.backward(w)
        np.testing.assert_allclose(
            ln.gamma.grad, numeric_grad(loss, ln.gamma.data), atol=1e-5
        )
        np.testing.assert_allclose(
            ln.beta.grad, numeric_grad(loss, ln.beta.data), atol=1e-5
        )


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [3, 1]])
        out = emb.forward(ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 0], emb.table.data[1])

    def test_gradient_accumulates_per_id(self, rng):
        emb = Embedding(5, 3, rng)
        ids = np.array([[0, 0]])
        emb.forward(ids)
        emb.zero_grad()
        emb.backward(np.ones((1, 2, 3)))
        np.testing.assert_allclose(emb.table.grad[0], 2.0)

    def test_out_of_vocab_rejected(self, rng):
        with pytest.raises(ModelError):
            Embedding(5, 3, rng).forward(np.array([[7]]))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = softmax(rng.normal(0, 10, (5, 7)))
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        out = softmax(np.array([[1e9, 1e9 + 1]]))
        assert np.isfinite(out).all()
