"""Smoke tests: every example script imports and exposes a main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(getattr(module, "main", None)), (
        f"{path.name} must define main()"
    )


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3
