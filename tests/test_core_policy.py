"""Unit tests for the Policy Maker (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.policy import PolicyMaker
from repro.core.primitives import Expand, Shrink
from repro.exceptions import SchedulingError


@pytest.fixture
def policy(cost_model) -> PolicyMaker:
    return PolicyMaker(cost_model)


def skewed_assignment(num_experts=8, num_gpus=8, hot_tokens=400_000):
    """One dominant expert, everyone else light."""
    assignment = np.full((num_experts, num_gpus), 1000, dtype=np.int64)
    assignment[0, :] = hot_tokens // num_gpus
    return assignment


class TestMakePlan:
    def test_proposes_pair_for_skewed_load(self, policy):
        placement = Placement.balanced(8, 8, 2)
        decision = policy.make_plan(skewed_assignment(), placement)
        assert decision.beneficial
        kinds = {type(a) for a in decision.actions}
        assert kinds == {Expand, Shrink}

    def test_expands_the_hot_expert(self, policy):
        placement = Placement.balanced(8, 8, 2)
        decision = policy.make_plan(skewed_assignment(), placement)
        expands = [a for a in decision.actions if isinstance(a, Expand)]
        assert expands[0].expert == 0

    def test_plan_strictly_improves_modelled_time(self, policy):
        placement = Placement.balanced(8, 8, 2)
        decision = policy.make_plan(skewed_assignment(), placement)
        assert decision.time_after < decision.time_before

    def test_balanced_load_yields_empty_plan(self, policy):
        placement = Placement.balanced(8, 8, 2)
        assignment = np.full((8, 8), 5000, dtype=np.int64)
        decision = policy.make_plan(assignment, placement)
        assert not decision.beneficial
        assert decision.actions == ()

    def test_applying_plan_reduces_estimate(self, policy):
        placement = Placement.balanced(8, 8, 2)
        assignment = skewed_assignment()
        before = policy.estimate_step_time(assignment, placement)
        decision = policy.make_plan(assignment, placement)
        for action in decision.actions:
            action.apply(placement)
        after = policy.estimate_step_time(assignment, placement)
        assert after < before

    def test_never_orphans_an_expert(self, policy):
        placement = Placement.balanced(8, 8, 2)
        assignment = skewed_assignment()
        for _ in range(20):
            decision = policy.make_plan(assignment, placement)
            if not decision.beneficial:
                break
            for action in decision.actions:
                action.apply(placement)
            placement.validate()
        assert (placement.replica_counts() >= 1).all()

    def test_expand_source_prefers_packing(self, policy):
        placement = Placement.balanced(4, 4, 2)
        source = policy._expand_source(placement, 0, placement.gpus_of(0)[0])
        assert source == placement.gpus_of(0)[0]

    def test_adjustment_horizon_validation(self, cost_model):
        with pytest.raises(SchedulingError):
            PolicyMaker(cost_model, adjustment_horizon=-1)
        with pytest.raises(SchedulingError):
            PolicyMaker(cost_model, expand_candidates=0)

    def test_zero_horizon_ignores_adjustment_cost(self, cost_model):
        policy = PolicyMaker(cost_model, adjustment_horizon=0)
        placement = Placement.balanced(8, 8, 2)
        decision = policy.make_plan(skewed_assignment(), placement)
        assert decision.beneficial
