"""Unit tests for the synthetic routing generators (Figure 3 calibration)."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.exceptions import ConfigurationError
from repro.workload.synthetic import (
    DriftingRoutingGenerator,
    expert_load_cdf,
    make_trace,
    stationary_skewed_probs,
    top_share,
)


class TestStationaryProbs:
    def test_sums_to_one(self):
        assert stationary_skewed_probs(64, 1.3).sum() == pytest.approx(1.0)

    def test_zero_skew_uniform(self):
        probs = stationary_skewed_probs(8, 0.0)
        assert np.allclose(probs, 1 / 8)

    def test_paper_calibration_top10_of_64(self):
        """Figure 3a: top-10 of 64 experts receive ~75% of tokens."""
        probs = stationary_skewed_probs(64, 1.3)
        assert 0.70 <= top_share(probs, 10) <= 0.80

    def test_permutation_preserves_distribution(self):
        rng = np.random.default_rng(0)
        probs = stationary_skewed_probs(16, 1.0, rng)
        expected = stationary_skewed_probs(16, 1.0)
        assert np.allclose(np.sort(probs), np.sort(expected))

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            stationary_skewed_probs(0, 1.0)
        with pytest.raises(ConfigurationError):
            stationary_skewed_probs(4, -1.0)


class TestCdfHelpers:
    def test_cdf_monotone_and_ends_at_one(self):
        cdf = expert_load_cdf(np.array([5, 1, 3, 1]))
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_cdf_rejects_empty_load(self):
        with pytest.raises(ConfigurationError):
            expert_load_cdf(np.zeros(4))

    def test_top_share_bounds(self):
        with pytest.raises(ConfigurationError):
            top_share(np.ones(4) / 4, 0)


class TestDriftingGenerator:
    def make(self, **overrides):
        defaults = dict(tokens_per_step=10_000, num_steps=20, seed=5)
        defaults.update(overrides)
        cfg = WorkloadConfig(**defaults)
        return DriftingRoutingGenerator(16, 4, cfg)

    def test_step_conserves_tokens(self):
        gen = self.make()
        frame = gen.next_step()
        assert frame.shape == (16, 4)
        assert frame.sum() == 10_000

    def test_uneven_token_count_distributed(self):
        cfg = WorkloadConfig(tokens_per_step=10_001, num_steps=5, seed=0)
        gen = DriftingRoutingGenerator(8, 4, cfg)
        assert gen.next_step().sum() == 10_001

    def test_generate_trace_shape(self):
        trace = self.make().generate()
        assert trace.num_steps == 20
        assert trace.num_experts == 16
        assert trace.num_gpus == 4

    def test_deterministic_given_seed(self):
        a = self.make(seed=9).generate(5)
        b = self.make(seed=9).generate(5)
        assert a == b

    def test_smoothness_between_consecutive_steps(self):
        """Figure 3b: loads change smoothly, not discontinuously."""
        trace = self.make(tokens_per_step=100_000, drift=0.05).generate(30)
        loads = trace.expert_loads().astype(float)
        shares = loads / loads.sum(axis=1, keepdims=True)
        step_changes = np.abs(np.diff(shares, axis=0)).sum(axis=1)
        assert step_changes.max() < 0.25

    def test_skew_annealing_reduces_concentration(self):
        hot_start = self.make(
            tokens_per_step=100_000, skew=1.3, final_skew=0.3, num_steps=60
        )
        trace = hot_start.generate(60)
        early = top_share(trace.expert_loads(2).astype(float) / 100_000, 3)
        late = top_share(trace.expert_loads(59).astype(float) / 100_000, 3)
        assert late < early

    def test_locality_bias_validated(self):
        with pytest.raises(ConfigurationError):
            DriftingRoutingGenerator(4, 2, WorkloadConfig(), locality_bias=1.5)

    def test_make_trace_helper(self):
        trace = make_trace(8, 4, num_steps=3, tokens_per_step=1000, seed=1)
        assert trace.num_steps == 3
        assert trace.tokens_per_step().sum() == 3000
