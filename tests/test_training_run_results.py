"""Tests for TrainingRunResult aggregation and time-to-quality coupling."""

import numpy as np
import pytest

from repro.baselines.base import StepResult
from repro.runtime.executor import StepTiming
from repro.training.convergence import ConvergenceModel
from repro.training.loop import ComparisonResult, TrainingRunResult


def make_result(step_time=0.01, assigned=1000, processed=1000, diverted=0):
    timing = StepTiming(
        a2a_time=step_time / 2,
        compute_time=step_time / 2,
        sync_time=0.0,
        adjustment_blocking=0.0,
        per_gpu_compute=np.full(2, step_time / 2),
    )
    return StepResult(
        timing=timing,
        assigned_tokens=assigned,
        processed_tokens=processed,
        diverted_tokens=diverted,
        dropped_tokens=assigned - processed - diverted,
        gpu_loads=np.array([processed // 2, processed - processed // 2]),
    )


class TestTrainingRunResult:
    def test_aggregates(self):
        run = TrainingRunResult(
            system="x",
            results=tuple(make_result(0.01 * (i + 1)) for i in range(4)),
        )
        assert run.mean_step_time == pytest.approx(0.025)
        assert run.total_time == pytest.approx(0.1)
        assert run.mean_token_efficiency == 1.0
        assert run.diverted_fraction == 0.0

    def test_moe_layer_scaling(self):
        run = TrainingRunResult(
            system="x", results=(make_result(0.01),), moe_layers=6
        )
        assert run.total_time == pytest.approx(0.06)

    def test_time_to_quality_penalizes_drops(self):
        clean = TrainingRunResult(
            system="clean", results=(make_result(0.01, 1000, 1000),)
        )
        droppy = TrainingRunResult(
            system="droppy", results=(make_result(0.01, 1000, 500),)
        )
        model = ConvergenceModel(alpha=1.0)
        assert droppy.time_to_quality(100, model) == pytest.approx(
            2 * clean.time_to_quality(100, model)
        )

    def test_diverted_tokens_partially_credited(self):
        diverted = TrainingRunResult(
            system="swipe",
            results=(make_result(0.01, 1000, 500, diverted=500),),
        )
        dropped = TrainingRunResult(
            system="ds", results=(make_result(0.01, 1000, 500),)
        )
        model = ConvergenceModel(alpha=1.0, diverted_credit=0.5)
        # Diversion retains half the signal: 0.5 + 0.25 = 0.75 effective.
        assert diverted.time_to_quality(100, model) < dropped.time_to_quality(
            100, model
        )

    def test_trajectory_lengths(self):
        run = TrainingRunResult(
            system="x", results=tuple(make_result() for _ in range(5))
        )
        traj = run.trajectory
        assert len(traj.token_efficiency) == 5


class TestComparisonResult:
    def test_speedup_directions(self):
        fast = TrainingRunResult(
            system="fast", results=(make_result(0.01),)
        )
        slow = TrainingRunResult(
            system="slow", results=(make_result(0.02),)
        )
        cmp = ComparisonResult(runs={"fast": fast, "slow": slow})
        assert cmp.speedup("fast", baseline="slow") == pytest.approx(2.0)
        assert cmp.speedup("slow", baseline="fast") == pytest.approx(0.5)

    def test_summary_contains_all_systems(self):
        cmp = ComparisonResult(
            runs={
                "a": TrainingRunResult("a", (make_result(),)),
                "b": TrainingRunResult("b", (make_result(),)),
            }
        )
        text = cmp.summary()
        assert "a" in text and "b" in text

    def test_ttq_speedup_uses_convergence(self):
        clean = TrainingRunResult("clean", (make_result(0.02, 1000, 1000),))
        droppy = TrainingRunResult("droppy", (make_result(0.01, 1000, 400),))
        cmp = ComparisonResult(runs={"clean": clean, "droppy": droppy})
        model = ConvergenceModel(alpha=1.25)
        # droppy is 2x faster per step but pays (1/0.4)^1.25 ~ 3.1x steps.
        assert cmp.time_to_quality_speedup(
            "clean", baseline="droppy", convergence=model
        ) > 1.0
