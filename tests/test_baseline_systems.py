"""Unit tests for the four MoE training systems."""

import numpy as np
import pytest

from repro.baselines import (
    ExpertParallelSystem,
    FasterMoESystem,
    FlexMoESystem,
    SwipeSystem,
    build_context,
)
from repro.baselines.expert_parallel import apply_capacity
from repro.baselines.swipe import rebalance_strict
from repro.config import ClusterConfig, MoEModelConfig, SchedulerConfig


@pytest.fixture(scope="module")
def context():
    cluster = ClusterConfig(num_nodes=2, gpus_per_node=4)
    model = MoEModelConfig("sys-test", 4, 256, 1024, 8)
    return build_context(cluster, model, seed=0)


def skewed_assignment(rng, num_experts=8, num_gpus=8, total=400_000):
    probs = np.arange(1, num_experts + 1, dtype=float) ** -1.3
    probs /= probs.sum()
    frame = np.zeros((num_experts, num_gpus), dtype=np.int64)
    per_gpu = total // num_gpus
    for g in range(num_gpus):
        frame[:, g] = rng.multinomial(per_gpu, probs)
    return frame


class TestApplyCapacity:
    def test_no_overflow_untouched(self):
        assignment = np.array([[5, 5], [3, 3]])
        capped, dropped = apply_capacity(assignment, 100)
        assert dropped == 0
        assert np.array_equal(capped, assignment)

    def test_overflow_dropped_proportionally(self):
        assignment = np.array([[60, 40], [0, 0]])
        capped, dropped = apply_capacity(assignment, 50)
        assert dropped == 50
        assert capped[0].sum() == 50
        assert capped[0, 0] >= capped[0, 1]

    def test_never_negative(self, rng):
        assignment = rng.integers(0, 100, (4, 4))
        capped, _ = apply_capacity(assignment, 10)
        assert (capped >= 0).all()


class TestRebalanceStrict:
    def test_perfectly_balanced_output(self, rng):
        assignment = skewed_assignment(rng)
        balanced, diverted = rebalance_strict(assignment)
        totals = balanced.sum(axis=1)
        assert totals.max() - totals.min() <= 1
        assert diverted > 0

    def test_preserves_per_gpu_origin_counts(self, rng):
        assignment = skewed_assignment(rng)
        balanced, _ = rebalance_strict(assignment)
        assert np.array_equal(
            balanced.sum(axis=0), assignment.sum(axis=0)
        )

    def test_already_balanced_no_diversion(self):
        assignment = np.full((4, 4), 25, dtype=np.int64)
        balanced, diverted = rebalance_strict(assignment)
        assert diverted == 0
        assert np.array_equal(balanced, assignment)


class TestExpertParallelSystem:
    def test_drops_reduce_token_efficiency(self, context, rng):
        system = ExpertParallelSystem(context, capacity_factor=1.0)
        result = system.step(skewed_assignment(rng), 0)
        assert result.token_efficiency < 1.0
        assert result.dropped_tokens > 0

    def test_uncapped_processes_everything(self, context, rng):
        system = ExpertParallelSystem(context, capacity_factor=None)
        result = system.step(skewed_assignment(rng), 0)
        assert result.token_efficiency == 1.0

    def test_capped_faster_than_uncapped(self, context, rng):
        assignment = skewed_assignment(rng)
        capped = ExpertParallelSystem(context, capacity_factor=1.0).step(assignment, 0)
        uncapped = ExpertParallelSystem(context, capacity_factor=None).step(assignment, 0)
        assert capped.step_time < uncapped.step_time


class TestSwipeSystem:
    def test_perfect_expert_efficiency(self, context, rng):
        system = SwipeSystem(context)
        result = system.step(skewed_assignment(rng), 0)
        assert result.expert_efficiency > 0.99
        assert result.diverted_tokens > 0
        assert result.token_efficiency < 1.0


class TestFasterMoESystem:
    def test_never_drops_tokens(self, context, rng):
        system = FasterMoESystem(context)
        result = system.step(skewed_assignment(rng), 0)
        assert result.token_efficiency == 1.0

    def test_shadows_hot_experts(self, context, rng):
        system = FasterMoESystem(context)
        shadows = system.select_shadows(skewed_assignment(rng))
        assert 0 in shadows  # hottest expert gets shadowed

    def test_balanced_load_no_shadows(self, context):
        system = FasterMoESystem(context)
        assignment = np.full((8, 8), 10_000, dtype=np.int64)
        assert system.select_shadows(assignment) == set()


class TestFlexMoESystem:
    def test_never_drops_tokens(self, context, rng):
        system = FlexMoESystem(context)
        result = system.step(skewed_assignment(rng), 0)
        assert result.token_efficiency == 1.0

    def test_balance_improves_over_steps(self, context, rng):
        system = FlexMoESystem(context)
        assignment = skewed_assignment(rng)
        first = system.step(assignment, 0)
        last = first
        for step in range(1, 12):
            last = system.step(assignment, step)
        assert last.balance < first.balance

    def test_placement_valid_throughout(self, context, rng):
        system = FlexMoESystem(context)
        for step in range(8):
            system.step(skewed_assignment(rng), step)
            system.placement.validate()
            system.target_placement.validate()

    def test_best_effort_pipeline_commits_eventually(self, context, rng):
        system = FlexMoESystem(context)
        assignment = skewed_assignment(rng)
        for step in range(15):
            system.step(assignment, step)
        assert system.pending_adjustments == 0
        assert system.placement == system.target_placement

    def test_synchronous_mode_blocks(self, context, rng):
        config = SchedulerConfig(best_effort=False)
        system = FlexMoESystem(context, scheduler_config=config)
        result = system.step(skewed_assignment(rng), 0)
        if result.scheduling_actions:
            assert result.timing.adjustment_blocking > 0

    def test_reset_restores_initial_state(self, context, rng):
        system = FlexMoESystem(context)
        for step in range(5):
            system.step(skewed_assignment(rng), step)
        system.reset()
        assert system.pending_adjustments == 0
        assert system.placement == system.target_placement

    def test_rejects_wrong_shape(self, context):
        system = FlexMoESystem(context)
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            system.step(np.zeros((3, 8), dtype=np.int64), 0)
