"""Unit tests for attention and the Top-K gate."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.model.attention import MultiHeadSelfAttention
from repro.model.gate import TopKGate


class TestAttention:
    def test_shapes(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng)
        x = rng.normal(0, 1, (2, 5, 16))
        assert attn.forward(x).shape == (2, 5, 16)

    def test_heads_must_divide(self, rng):
        with pytest.raises(ModelError):
            MultiHeadSelfAttention(10, 3, rng)

    def test_causal_mask_blocks_future(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng, causal=True)
        x = rng.normal(0, 1, (1, 4, 8))
        base = attn.forward(x.copy())
        x2 = x.copy()
        x2[0, 3] += 100.0  # perturb the last position only
        out2 = attn.forward(x2)
        np.testing.assert_allclose(base[0, :3], out2[0, :3], atol=1e-8)
        assert not np.allclose(base[0, 3], out2[0, 3])

    def test_noncausal_attends_everywhere(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng, causal=False)
        x = rng.normal(0, 1, (1, 4, 8))
        base = attn.forward(x.copy())
        x2 = x.copy()
        x2[0, 3] += 100.0
        out2 = attn.forward(x2)
        assert not np.allclose(base[0, 0], out2[0, 0])

    def test_input_gradient_numeric(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(0, 1, (1, 3, 8))
        w = rng.normal(0, 1, (1, 3, 8))

        def loss():
            return float((attn.forward(x) * w).sum())

        attn.forward(x)
        analytic = attn.backward(w)
        eps = 1e-6
        idxs = [(0, 0, 1), (0, 1, 4), (0, 2, 7)]
        for idx in idxs:
            old = x[idx]
            x[idx] = old + eps
            up = loss()
            x[idx] = old - eps
            down = loss()
            x[idx] = old
            numeric = (up - down) / (2 * eps)
            assert analytic[idx] == pytest.approx(numeric, abs=1e-5)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ModelError):
            MultiHeadSelfAttention(8, 2, rng).forward(np.zeros((3, 8)))


class TestTopKGate:
    def test_weights_sum_to_one(self, rng):
        gate = TopKGate(8, 4, 2, 0.0, rng)
        weights, indices = gate.forward(rng.normal(0, 1, (16, 8)))
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)
        assert indices.shape == (16, 2)

    def test_indices_are_topk_of_logits(self, rng):
        gate = TopKGate(8, 4, 1, 0.0, rng)
        x = rng.normal(0, 1, (10, 8))
        _, indices = gate.forward(x)
        logits = x @ gate.w_gate.data
        np.testing.assert_array_equal(indices[:, 0], logits.argmax(axis=1))

    def test_stats_counts(self, rng):
        gate = TopKGate(8, 4, 2, 0.0, rng)
        gate.forward(rng.normal(0, 1, (20, 8)))
        stats = gate.last_stats
        assert stats.expert_counts.sum() == 40  # 20 tokens x top-2
        assert stats.top1_counts.sum() == 20

    def test_balance_loss_uniform_is_one(self, rng):
        gate = TopKGate(8, 4, 1, 0.0, rng)
        # With symmetric random inputs, aux ~ 1 (uniform baseline).
        gate.forward(rng.normal(0, 0.01, (4000, 8)))
        assert gate.last_stats.balance_loss == pytest.approx(1.0, abs=0.15)

    def test_balance_loss_skewed_above_one(self, rng):
        gate = TopKGate(8, 4, 1, 0.0, rng)
        x = rng.normal(0, 0.1, (200, 8))
        gate.w_gate.data[:, 0] = 3.0  # force expert 0 to win everything
        gate.forward(x + 1.0)
        assert gate.last_stats.balance_loss > 1.5

    def test_balance_gradient_reduces_aux_loss(self, rng):
        gate = TopKGate(8, 8, 2, balance_coef=1.0, rng=rng)
        gate.w_gate.data[:, 0] = 1.0  # start skewed
        x = rng.normal(0, 1, (256, 8)) + 0.5
        before = None
        for _ in range(30):
            gate.forward(x)
            if before is None:
                before = gate.last_stats.balance_loss
            gate.zero_grad()
            gate.backward(np.zeros((256, 2)))  # only balance-loss gradient
            gate.w_gate.data -= 0.5 * gate.w_gate.grad
        gate.forward(x)
        assert gate.last_stats.balance_loss < before

    def test_input_gradient_numeric(self, rng):
        gate = TopKGate(6, 4, 2, balance_coef=0.0, rng=rng)
        x = rng.normal(0, 1, (5, 6))
        w = rng.normal(0, 1, (5, 2))

        def loss():
            weights, _ = gate.forward(x)
            return float((weights * w).sum())

        gate.forward(x)
        analytic = gate.backward(w)
        eps = 1e-6
        for idx in [(0, 0), (2, 3), (4, 5)]:
            old = x[idx]
            x[idx] = old + eps
            up = loss()
            x[idx] = old - eps
            down = loss()
            x[idx] = old
            assert analytic[idx] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-5
            )

    def test_validation(self, rng):
        with pytest.raises(ModelError):
            TopKGate(8, 4, 5, 0.0, rng)
        with pytest.raises(ModelError):
            TopKGate(8, 4, 2, -1.0, rng)
