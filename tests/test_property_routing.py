"""Property-based tests: routing and placement invariants.

These encode the invariants DESIGN.md commits to:

* routing conservation (100% token efficiency of the router);
* per-vExpert capacity bounds;
* placement validity under arbitrary action sequences;
* slot conservation under paired Expand/Shrink.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.placement import Placement
from repro.core.router import FlexibleTokenRouter, validate_conservation
from repro.exceptions import PlacementError


def placements(max_experts=12, max_gpus=8, max_slots=3):
    """Strategy producing valid random placements."""

    @st.composite
    def build(draw):
        num_gpus = draw(st.integers(1, max_gpus))
        max_e = num_gpus * max_slots
        num_experts = draw(st.integers(1, min(max_experts, max_e)))
        slots = draw(st.integers(
            max(1, -(-num_experts // num_gpus)), max_slots
        ))
        placement = Placement.balanced(num_experts, num_gpus, slots)
        # Random mutation walk to diversify beyond the balanced layout.
        rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
        for _ in range(draw(st.integers(0, 10))):
            kind = rng.integers(0, 2)
            try:
                if kind == 0:
                    e = int(rng.integers(0, num_experts))
                    gpus = placement.gpus_of(e)
                    src = int(rng.choice(gpus))
                    dst = int(rng.integers(0, num_gpus))
                    if dst != src and placement.free_slots(dst) > 0:
                        placement.move_vexpert(e, src, dst)
                else:
                    e = int(rng.integers(0, num_experts))
                    victim = int(rng.integers(0, num_experts))
                    if victim != e:
                        v_gpus = placement.gpus_of(victim)
                        g = int(rng.choice(v_gpus))
                        placement.remove_vexpert(victim, g)
                        placement.add_vexpert(e, g)
            except PlacementError:
                continue
        return placement

    return build()


def assignments_for(placement, max_tokens=5000):
    return st.lists(
        st.integers(0, max_tokens),
        min_size=placement.num_experts * placement.num_gpus,
        max_size=placement.num_experts * placement.num_gpus,
    ).map(
        lambda flat: np.array(flat, dtype=np.int64).reshape(
            placement.num_experts, placement.num_gpus
        )
    )


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_router_conserves_every_token(data):
    placement = data.draw(placements())
    assignment = data.draw(assignments_for(placement))
    plan = FlexibleTokenRouter().route(assignment, placement)
    validate_conservation(assignment, plan)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_router_respects_vexpert_capacity(data):
    placement = data.draw(placements())
    assignment = data.draw(assignments_for(placement))
    plan = FlexibleTokenRouter().route(assignment, placement)
    counts = placement.counts
    arrivals = plan.arrivals
    for e in range(placement.num_experts):
        cap = plan.capacities[e]
        if cap == 0:
            continue
        assert (arrivals[e] <= cap * counts[e]).all()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_router_never_routes_to_gpu_without_replica(data):
    placement = data.draw(placements())
    assignment = data.draw(assignments_for(placement))
    plan = FlexibleTokenRouter().route(assignment, placement)
    counts = placement.counts
    arrivals = plan.arrivals
    assert (arrivals[counts == 0] == 0).all()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_fractional_routing_conserves_and_bounds(data):
    placement = data.draw(placements())
    assignment = data.draw(assignments_for(placement))
    routes = FlexibleTokenRouter().route_fractional(assignment, placement)
    assert np.allclose(routes.sum(axis=2), assignment)
    assert (routes >= -1e-9).all()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_placement_walk_preserves_invariants(data):
    placement = data.draw(placements())
    placement.validate()
    per_expert = placement.replica_counts()
    assert (per_expert >= 1).all()
    total = placement.counts.sum()
    assert total <= placement.total_slots
