"""Shared fixtures: a small cluster, model and workload usable everywhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.collectives import CollectiveCostModel
from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, MoEModelConfig, WorkloadConfig
from repro.core.cost_model import MoECostModel
from repro.core.placement import Placement
from repro.workload.synthetic import DriftingRoutingGenerator


@pytest.fixture
def cluster_config() -> ClusterConfig:
    """2 nodes x 4 GPUs: small enough for fast tests, has inter-node links."""
    return ClusterConfig(num_nodes=2, gpus_per_node=4)


@pytest.fixture
def topology(cluster_config: ClusterConfig) -> ClusterTopology:
    return ClusterTopology(cluster_config)


@pytest.fixture
def collectives(topology: ClusterTopology) -> CollectiveCostModel:
    return CollectiveCostModel(topology)


@pytest.fixture
def model_config() -> MoEModelConfig:
    return MoEModelConfig(
        "test-moe", num_layers=4, d_model=256, d_ffn=1024, num_experts=8
    )


@pytest.fixture
def exact_profile(topology: ClusterTopology, model_config: MoEModelConfig):
    return Profiler(topology, noise=0.0, seed=0).profile(model_config)


@pytest.fixture
def cost_model(exact_profile, model_config: MoEModelConfig) -> MoECostModel:
    return MoECostModel(exact_profile, model_config)


@pytest.fixture
def placement(model_config: MoEModelConfig, topology: ClusterTopology) -> Placement:
    return Placement.balanced(model_config.num_experts, topology.num_gpus, 2)


@pytest.fixture
def workload_config() -> WorkloadConfig:
    return WorkloadConfig(tokens_per_step=65_536, num_steps=10, seed=1)


@pytest.fixture
def assignment(
    model_config: MoEModelConfig,
    topology: ClusterTopology,
    workload_config: WorkloadConfig,
) -> np.ndarray:
    generator = DriftingRoutingGenerator(
        model_config.num_experts, topology.num_gpus, workload_config
    )
    return generator.next_step()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
