"""Edge-case tests across modules: empty inputs, extremes, formatting."""

import numpy as np
import pytest

from repro.baselines import SwipeSystem, build_context
from repro.baselines.base import StepResult
from repro.bench.reporting import _fmt, format_table
from repro.config import ClusterConfig, MoEModelConfig
from repro.core.placement import Placement
from repro.core.router import FlexibleTokenRouter
from repro.exceptions import SimulationError
from repro.runtime.executor import StepTiming
from repro.training.metrics import EfficiencyTrajectory
from repro.workload.trace import RoutingTrace


class TestReportingFormat:
    def test_float_formats(self):
        assert _fmt(0.0) == "0"
        assert _fmt(1.5) == "1.5"
        assert _fmt(1234.5) == "1.234e+03"
        assert _fmt(0.0001) == "1.000e-04"
        assert _fmt("text") == "text"

    def test_empty_rows_table(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestStepResultEdges:
    @staticmethod
    def make_timing(**overrides):
        base = dict(
            a2a_time=0.0,
            compute_time=0.0,
            sync_time=0.0,
            adjustment_blocking=0.0,
            per_gpu_compute=np.zeros(2),
        )
        base.update(overrides)
        return StepTiming(**base)

    def test_zero_token_step(self):
        result = StepResult(
            timing=self.make_timing(),
            assigned_tokens=0,
            processed_tokens=0,
            gpu_loads=np.zeros(2),
        )
        assert result.token_efficiency == 1.0
        assert result.expert_efficiency == 1.0
        assert result.balance == 1.0

    def test_zero_step_utilization(self):
        timing = self.make_timing()
        assert timing.compute_utilization == 1.0
        assert timing.step_time == 0.0


class TestTrajectoryEdges:
    def test_single_step_trajectory(self):
        traj = EfficiencyTrajectory(
            token_efficiency=np.array([0.5]),
            expert_efficiency=np.array([0.8]),
        )
        tok, exp = traj.endpoint(window=10)
        assert tok == 0.5
        assert exp == 0.8

    def test_empty_trajectory_rejected(self):
        traj = EfficiencyTrajectory(
            token_efficiency=np.array([]),
            expert_efficiency=np.array([]),
        )
        with pytest.raises(SimulationError):
            traj.endpoint()


class TestRouterEdges:
    def test_single_gpu_cluster(self):
        placement = Placement.balanced(4, 1, 4)
        assignment = np.array([[10], [20], [0], [5]])
        plan = FlexibleTokenRouter().route(assignment, placement)
        assert plan.locality_fraction == 1.0
        assert plan.gpu_loads[0] == 35

    def test_single_expert(self):
        placement = Placement.balanced(1, 4, 1)
        assignment = np.array([[10, 10, 10, 10]])
        plan = FlexibleTokenRouter().route(assignment, placement)
        assert plan.routes.sum() == 40

    def test_one_token(self):
        placement = Placement.balanced(2, 2, 1)
        assignment = np.array([[1, 0], [0, 0]])
        plan = FlexibleTokenRouter().route(assignment, placement)
        assert plan.tokens_for(0) == 1


class TestSwipeEdges:
    def test_empty_step(self):
        context = build_context(
            ClusterConfig(num_nodes=1, gpus_per_node=2),
            MoEModelConfig("edge", 2, 64, 256, 4),
            seed=0,
        )
        system = SwipeSystem(context)
        result = system.step(np.zeros((4, 2), dtype=np.int64), 0)
        assert result.token_efficiency == 1.0
        assert result.diverted_tokens == 0

    def test_all_tokens_on_one_expert(self):
        context = build_context(
            ClusterConfig(num_nodes=1, gpus_per_node=2),
            MoEModelConfig("edge2", 2, 64, 256, 4),
            seed=0,
        )
        system = SwipeSystem(context)
        assignment = np.zeros((4, 2), dtype=np.int64)
        assignment[0] = [500, 500]
        result = system.step(assignment, 0)
        # 3/4 of tokens must be diverted for strict balance.
        assert result.diverted_tokens == 750
        assert result.expert_efficiency > 0.99


class TestTraceEdges:
    def test_single_step_single_expert(self):
        trace = RoutingTrace(np.array([[[7]]]))
        assert trace.expert_loads(0)[0] == 7
        assert trace.tokens_per_step()[0] == 7
