"""Unit tests for the real-training quality harness (kept small & fast)."""

import numpy as np
import pytest

from repro.training.quality import train_classifier, train_language_model
from repro.workload.datasets import ClusterClassificationDataset, MarkovLMDataset


@pytest.fixture(scope="module")
def cls_dataset():
    return ClusterClassificationDataset(
        num_classes=6, num_clusters=6, input_dim=16, noise=0.15, seed=0
    )


@pytest.fixture(scope="module")
def lm_dataset():
    return MarkovLMDataset(vocab_size=16, num_states=4, seed=0)


class TestClassifierHarness:
    def test_learning_happens(self, cls_dataset):
        result = train_classifier(
            cls_dataset, steps=80, batch_size=64, num_experts=4,
            d_model=16, num_layers=2, eval_every=40, seed=0,
        )
        assert result.loss_history[-1] < result.loss_history[0]
        assert result.final_metric > 1.0 / 6  # better than chance
        assert result.metric_name == "top1"

    def test_capacity_records_drops(self, cls_dataset):
        result = train_classifier(
            cls_dataset, capacity_factor=0.5, steps=30, batch_size=64,
            num_experts=4, d_model=16, num_layers=2, eval_every=15, seed=0,
        )
        assert result.dropped_fraction > 0

    def test_no_capacity_no_drops(self, cls_dataset):
        result = train_classifier(
            cls_dataset, capacity_factor=None, steps=20, batch_size=64,
            num_experts=4, d_model=16, num_layers=2, eval_every=10, seed=0,
        )
        assert result.dropped_fraction == 0

    def test_load_history_shape(self, cls_dataset):
        result = train_classifier(
            cls_dataset, steps=15, batch_size=32, num_experts=4,
            d_model=16, num_layers=2, eval_every=5, seed=0,
        )
        assert result.expert_load_history.shape == (15, 4)

    def test_target_tracking(self, cls_dataset):
        result = train_classifier(
            cls_dataset, steps=60, batch_size=64, num_experts=4,
            d_model=16, num_layers=2, eval_every=10,
            target_metric=0.0, seed=0,  # trivially reached
        )
        assert result.steps_to_target == 10

    def test_top5_metric(self, cls_dataset):
        result = train_classifier(
            cls_dataset, steps=15, batch_size=32, num_experts=4,
            d_model=16, num_layers=2, eval_every=15, metric="top5", seed=0,
        )
        assert result.metric_name == "top5"
        assert result.final_metric >= 0.5  # top-5 of 6 classes is easy

    def test_routing_trace_conserves_tokens(self, cls_dataset):
        result = train_classifier(
            cls_dataset, steps=10, batch_size=32, num_experts=4,
            d_model=16, num_layers=2, eval_every=5, seed=0,
        )
        trace = result.routing_trace(num_gpus=4)
        np.testing.assert_array_equal(
            trace.expert_loads(), result.expert_load_history
        )


class TestLMHarness:
    def test_perplexity_improves(self, lm_dataset):
        result = train_language_model(
            lm_dataset, steps=60, batch_size=16, seq_len=16,
            num_experts=4, d_model=16, num_layers=2, eval_every=30, seed=0,
        )
        assert result.metric_name == "ppl"
        assert result.final_metric < lm_dataset.vocab_size
        first_eval = result.eval_history[0][1]
        assert result.final_metric <= first_eval

    def test_balance_coef_reduces_aux(self, lm_dataset):
        plain = train_language_model(
            lm_dataset, balance_coef=0.0, steps=50, batch_size=16,
            seq_len=16, num_experts=4, d_model=16, num_layers=2,
            eval_every=25, seed=0,
        )
        balanced = train_language_model(
            lm_dataset, balance_coef=0.05, steps=50, batch_size=16,
            seq_len=16, num_experts=4, d_model=16, num_layers=2,
            eval_every=25, seed=0,
        )
        assert balanced.balance_loss <= plain.balance_loss + 0.1
