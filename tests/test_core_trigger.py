"""The Trigger protocol: the when-to-schedule predicates shared by
training and serving (the trigger extraction of the serving subsystem)."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, SchedulerConfig
from repro.core.trigger import (
    ImbalanceTrigger,
    LatencyTrigger,
    NeverTrigger,
    StaticIntervalTrigger,
    Trigger,
    TriggerSignals,
    trigger_from_config,
)
from repro.exceptions import SchedulingError


def signals(**overrides):
    base = dict(step=0, balance_metric=None, p99_latency=None, queue_tokens=None)
    base.update(overrides)
    return TriggerSignals(**base)


class TestImbalanceTrigger:
    def test_fires_above_threshold(self):
        trig = ImbalanceTrigger(metric="max", threshold=1.15)
        assert trig.should_trigger(signals(balance_metric=1.2))
        assert not trig.should_trigger(signals(balance_metric=1.1))
        assert not trig.should_trigger(signals(balance_metric=1.15))

    def test_variance_metric_offsets_threshold(self):
        trig = ImbalanceTrigger(metric="variance", threshold=1.15)
        # Variance compares against threshold - 1.
        assert trig.should_trigger(signals(balance_metric=0.2))
        assert not trig.should_trigger(signals(balance_metric=0.1))

    def test_requires_the_metric(self):
        trig = ImbalanceTrigger()
        assert trig.requires_balance_metric
        with pytest.raises(SchedulingError):
            trig.should_trigger(signals())

    def test_ignores_serving_signals(self):
        trig = ImbalanceTrigger(threshold=1.15)
        assert not trig.should_trigger(
            signals(balance_metric=1.0, p99_latency=1e9, queue_tokens=1e9)
        )

    def test_rejects_bad_threshold(self):
        with pytest.raises(SchedulingError):
            ImbalanceTrigger(threshold=0.5)


class TestStaticIntervalTrigger:
    def test_fires_on_the_interval(self):
        trig = StaticIntervalTrigger(interval=10)
        assert trig.should_trigger(signals(step=0))
        assert not trig.should_trigger(signals(step=7))
        assert trig.should_trigger(signals(step=20))

    def test_needs_no_metric(self):
        assert not StaticIntervalTrigger(interval=3).requires_balance_metric

    def test_rejects_bad_interval(self):
        with pytest.raises(SchedulingError):
            StaticIntervalTrigger(interval=0)


class TestLatencyTrigger:
    def test_fires_on_p99_violation(self):
        trig = LatencyTrigger(p99_target=0.1)
        assert trig.should_trigger(signals(p99_latency=0.2))
        assert not trig.should_trigger(signals(p99_latency=0.05))

    def test_fires_on_queue_depth(self):
        trig = LatencyTrigger(p99_target=0.1, queue_limit_tokens=1000)
        assert trig.should_trigger(signals(queue_tokens=2000))
        assert not trig.should_trigger(signals(queue_tokens=500))

    def test_absent_signals_never_fire(self):
        trig = LatencyTrigger(p99_target=0.1, queue_limit_tokens=1000)
        assert not trig.should_trigger(signals())

    def test_queue_signal_disabled_by_default(self):
        trig = LatencyTrigger(p99_target=0.1)
        assert not trig.should_trigger(signals(queue_tokens=1e12))

    def test_ignores_balance_metric(self):
        trig = LatencyTrigger(p99_target=0.1)
        assert not trig.requires_balance_metric
        assert not trig.should_trigger(signals(balance_metric=100.0))

    def test_validation(self):
        with pytest.raises(SchedulingError):
            LatencyTrigger(p99_target=0.0)
        with pytest.raises(SchedulingError):
            LatencyTrigger(p99_target=0.1, queue_limit_tokens=-1)


class TestNeverTrigger:
    def test_never_fires(self):
        trig = NeverTrigger()
        assert not trig.should_trigger(
            signals(step=0, balance_metric=1e9, p99_latency=1e9, queue_tokens=1e9)
        )


class TestTriggerFromConfig:
    def test_dynamic_maps_to_imbalance(self):
        config = SchedulerConfig(balance_threshold=1.3, metric="variance")
        trig = trigger_from_config(config)
        assert isinstance(trig, ImbalanceTrigger)
        assert trig.threshold == 1.3
        assert trig.metric == "variance"

    def test_static_maps_to_interval(self):
        config = SchedulerConfig(mode="static", static_interval=25)
        trig = trigger_from_config(config)
        assert isinstance(trig, StaticIntervalTrigger)
        assert trig.interval == 25

    def test_all_triggers_satisfy_protocol(self):
        for trig in (
            ImbalanceTrigger(),
            StaticIntervalTrigger(),
            LatencyTrigger(p99_target=1.0),
            NeverTrigger(),
        ):
            assert isinstance(trig, Trigger)


class TestSchedulerIntegration:
    """The Scheduler's trigger path is equivalent to the pre-extraction
    inlined predicate, and serving signals reach a latency trigger."""

    def _scheduler(self, config, trigger=None):
        from repro.cluster.profiler import Profiler
        from repro.core.cost_model import MoECostModel
        from repro.core.placement import Placement
        from repro.core.policy import PolicyMaker
        from repro.core.scheduler import Scheduler
        from repro.config import MoEModelConfig

        cluster = ClusterConfig(num_nodes=1, gpus_per_node=4)
        topology = ClusterTopology(cluster)
        model = MoEModelConfig(
            name="trigger-test", num_layers=2, d_model=128, d_ffn=512,
            num_experts=8,
        )
        profile = Profiler(topology, noise=0.0, seed=0).profile(model)
        placement = Placement.balanced(8, 4, 4)
        policy = PolicyMaker(MoECostModel(profile, model))
        return Scheduler(placement, policy, config, topology, trigger=trigger)

    def test_dynamic_matches_metric_threshold(self):
        scheduler = self._scheduler(SchedulerConfig(balance_threshold=1.15))
        balanced = np.full((8, 4), 100)
        skewed = balanced.copy()
        skewed[0] *= 50
        assert not scheduler.should_trigger(balanced, step=0)
        assert scheduler.should_trigger(skewed, step=0)

    def test_static_mode_ignores_balance(self):
        scheduler = self._scheduler(
            SchedulerConfig(mode="static", static_interval=10)
        )
        skewed = np.full((8, 4), 100)
        skewed[0] *= 50
        assert scheduler.should_trigger(skewed, step=0)
        assert not scheduler.should_trigger(skewed, step=3)

    def test_latency_trigger_consumes_serving_signals(self):
        scheduler = self._scheduler(
            SchedulerConfig(),
            trigger=LatencyTrigger(p99_target=0.1, queue_limit_tokens=1000),
        )
        skewed = np.full((8, 4), 100)
        skewed[0] *= 50  # would fire the imbalance trigger
        assert not scheduler.should_trigger(skewed, step=0)
        scheduler.observe_serving_signals(p99_latency=0.5)
        assert scheduler.should_trigger(skewed, step=0)
        scheduler.observe_serving_signals(p99_latency=0.01, queue_tokens=5000)
        assert scheduler.should_trigger(skewed, step=0)
        scheduler.observe_serving_signals(p99_latency=0.01, queue_tokens=10)
        assert not scheduler.should_trigger(skewed, step=0)

    def test_never_trigger_freezes_scheduling(self):
        scheduler = self._scheduler(SchedulerConfig(), trigger=NeverTrigger())
        skewed = np.full((8, 4), 100)
        skewed[0] *= 50
        outcome = scheduler.on_step(skewed, step=0)
        assert not outcome.triggered
        assert outcome.actions == ()

    def test_latency_trigger_runs_full_round_when_fired(self):
        scheduler = self._scheduler(
            SchedulerConfig(),
            trigger=LatencyTrigger(p99_target=0.1),
        )
        scheduler.observe_serving_signals(p99_latency=1.0)
        skewed = np.full((8, 4), 10)
        skewed[0] = 2000
        outcome = scheduler.on_step(skewed, step=0)
        assert outcome.triggered
        assert outcome.rounds >= 1
        assert outcome.metric_after <= outcome.metric_before
