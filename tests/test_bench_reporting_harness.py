"""Unit tests for the bench harness and reporting helpers."""

import pytest

from repro.bench.harness import (
    SMOKE,
    ExperimentScale,
    cluster_for,
    quick_comparison,
)
from repro.bench.reporting import (
    format_series,
    format_speedups,
    format_table,
)
from repro.exceptions import ConfigurationError


class TestReporting:
    def test_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_table_row_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_series(self):
        out = format_series("FlexMoE", [8, 16], [1.0, 1.9])
        assert "FlexMoE" in out
        assert "(8, 1)" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_series("x", [1], [1, 2])

    def test_speedups_block(self):
        out = format_speedups("Fig5", {"FlexMoE": 1.7}, "DeepSpeed")
        assert "1.70x" in out


class TestHarness:
    def test_cluster_for_shapes(self):
        assert cluster_for(64).num_nodes == 8
        assert cluster_for(4).num_nodes == 1
        assert cluster_for(4).gpus_per_node == 4
        with pytest.raises(ConfigurationError):
            cluster_for(12)

    def test_scale_workload_overrides(self):
        scale = ExperimentScale(num_steps=7)
        wl = scale.workload(seed=3, skew=0.5)
        assert wl.num_steps == 7
        assert wl.seed == 3
        assert wl.skew == 0.5

    def test_quick_comparison_smoke(self):
        result = quick_comparison(num_gpus=4, num_experts=8, num_steps=6)
        assert set(result.systems) == {"DeepSpeed", "FasterMoE", "FlexMoE"}
        assert result.speedup("FlexMoE") > 0
