"""Unit tests for the profiling harness."""

import numpy as np
import pytest

from repro.cluster.profiler import ClusterProfile, Profiler
from repro.exceptions import ProfilingError


class TestProfiler:
    def test_exact_profile_matches_ground_truth(self, topology, model_config):
        profile = Profiler(topology, noise=0.0).profile(model_config)
        truth = topology.devices[0].tokens_per_second(model_config)
        assert profile.tokens_per_second(0) == pytest.approx(truth)
        assert profile.link_bandwidth(0, 4) == topology.bandwidth(0, 4)

    def test_noisy_profile_close_to_truth(self, topology, model_config):
        profile = Profiler(topology, noise=0.05, seed=3).profile(model_config)
        truth = topology.devices[0].tokens_per_second(model_config)
        assert profile.tokens_per_second(0) == pytest.approx(truth, rel=0.2)
        assert profile.tokens_per_second(0) != truth

    def test_noise_reproducible(self, topology, model_config):
        a = Profiler(topology, noise=0.05, seed=7).profile(model_config)
        b = Profiler(topology, noise=0.05, seed=7).profile(model_config)
        assert np.array_equal(a.tps, b.tps)

    def test_lazy_bps_measurement_cached(self, topology, model_config):
        profile = Profiler(topology, noise=0.05, seed=1).profile(model_config)
        first = profile.allreduce_bps([0, 1, 4])
        second = profile.allreduce_bps([4, 1, 0])
        assert first == second

    def test_exact_profile_helper_restores_noise(self, topology, model_config):
        profiler = Profiler(topology, noise=0.1, seed=0)
        profiler.exact_profile(model_config)
        noisy = profiler.profile(model_config)
        truth = topology.devices[0].tokens_per_second(model_config)
        assert noisy.tokens_per_second(0) != truth

    def test_unknown_gpu_rejected(self, exact_profile):
        with pytest.raises(ProfilingError):
            exact_profile.tokens_per_second(99)
        with pytest.raises(ProfilingError):
            exact_profile.link_bandwidth(0, 99)

    def test_detached_profile_rejects_unprofiled_group(self, model_config):
        profile = ClusterProfile(
            tps=np.ones(4), bandwidth=np.ones((4, 4)), model=model_config
        )
        with pytest.raises(ProfilingError):
            profile.allreduce_bps([0, 1])

    def test_rejects_bad_parameters(self, topology):
        with pytest.raises(ProfilingError):
            Profiler(topology, noise=-0.1)
        with pytest.raises(ProfilingError):
            Profiler(topology, repeats=0)
