"""Unit tests for routing-trace statistics."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.exceptions import RoutingError
from repro.workload.stats import (
    analyze_trace,
    drift_rate,
    gini_coefficient,
    hot_set_churn,
    recommend_scheduler_settings,
)
from repro.workload.synthetic import make_trace
from repro.workload.trace import RoutingTrace


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(8, 100.0)) == pytest.approx(0.0)

    def test_concentrated_near_one(self):
        loads = np.zeros(64)
        loads[0] = 1000
        assert gini_coefficient(loads) > 0.9

    def test_monotone_in_skew(self):
        mild = gini_coefficient(np.array([4.0, 3.0, 2.0, 1.0]))
        harsh = gini_coefficient(np.array([10.0, 1.0, 1.0, 1.0]))
        assert harsh > mild

    def test_zero_total_is_zero(self):
        assert gini_coefficient(np.zeros(4)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(RoutingError):
            gini_coefficient(np.array([-1.0, 2.0]))


class TestDriftAndChurn:
    def test_static_trace_has_zero_drift(self):
        frame = np.full((4, 2), 10, dtype=np.int64)
        trace = RoutingTrace(np.stack([frame] * 5))
        assert drift_rate(trace) == 0.0

    def test_alternating_trace_has_high_drift(self):
        a = np.array([[20, 20], [0, 0]], dtype=np.int64)
        b = np.array([[0, 0], [20, 20]], dtype=np.int64)
        trace = RoutingTrace(np.stack([a, b, a, b]))
        assert drift_rate(trace) == pytest.approx(1.0)

    def test_churn_zero_for_static_hot_set(self):
        frame = np.zeros((8, 2), dtype=np.int64)
        frame[0] = 100
        frame[1] = 50
        trace = RoutingTrace(np.stack([frame] * 8))
        assert hot_set_churn(trace, k=2) == 0.0

    def test_churn_detects_swap(self):
        early = np.zeros((4, 1), dtype=np.int64)
        early[0, 0] = 100
        early[1, 0] = 1
        late = np.zeros((4, 1), dtype=np.int64)
        late[2, 0] = 100
        late[3, 0] = 1
        trace = RoutingTrace(np.stack([early] * 4 + [late] * 4))
        assert hot_set_churn(trace, k=1) == 1.0

    def test_churn_k_validation(self):
        trace = make_trace(4, 2, WorkloadConfig(tokens_per_step=100, num_steps=3))
        with pytest.raises(RoutingError):
            hot_set_churn(trace, k=9)


class TestAnalyzeTrace:
    def test_full_bundle(self):
        trace = make_trace(
            16, 4,
            WorkloadConfig(tokens_per_step=100_000, num_steps=20, skew=1.3,
                           seed=1),
        )
        stats = analyze_trace(trace, top_ks=(1, 5))
        assert set(stats.top_shares) == {1, 5}
        assert 0 < stats.top_shares[1] < stats.top_shares[5] <= 1
        assert 0 < stats.gini < 1
        assert stats.drift_rate >= 0
        assert stats.steps == 20
        assert not stats.is_balanced(threshold=0.1)

    def test_uniform_trace_is_balanced(self):
        frame = np.full((8, 4), 25, dtype=np.int64)
        trace = RoutingTrace(np.stack([frame] * 4))
        stats = analyze_trace(trace)
        assert stats.is_balanced()
        assert stats.gini == pytest.approx(0.0)

    def test_rejects_bad_topk(self):
        trace = make_trace(4, 2, WorkloadConfig(tokens_per_step=100, num_steps=3))
        with pytest.raises(RoutingError):
            analyze_trace(trace, top_ks=(9,))


class TestRecommendations:
    def test_settings_shape(self):
        trace = make_trace(
            32, 8,
            WorkloadConfig(tokens_per_step=500_000, num_steps=15, skew=1.3,
                           seed=0),
        )
        settings = recommend_scheduler_settings(analyze_trace(trace))
        assert settings["balance_threshold"] >= 1.1
        assert settings["slots_per_gpu"] >= 2
        assert settings["migrate_period"] in (5, 20)

    def test_fast_drift_raises_threshold(self):
        stable = make_trace(
            8, 2,
            WorkloadConfig(tokens_per_step=100_000, num_steps=10, drift=0.0,
                           seed=0),
        )
        volatile = make_trace(
            8, 2,
            WorkloadConfig(tokens_per_step=100_000, num_steps=10, drift=0.6,
                           seed=0),
        )
        s_stable = recommend_scheduler_settings(analyze_trace(stable))
        s_volatile = recommend_scheduler_settings(analyze_trace(volatile))
        assert (
            s_volatile["balance_threshold"] >= s_stable["balance_threshold"]
        )
