"""Unit tests for the synthetic quality datasets."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workload.datasets import ClusterClassificationDataset, MarkovLMDataset


class TestClusterClassification:
    def test_shapes(self, rng):
        ds = ClusterClassificationDataset(num_classes=5, num_clusters=4, input_dim=8)
        x, y, c = ds.sample(32, rng)
        assert x.shape == (32, 8)
        assert y.shape == (32,)
        assert c.shape == (32,)

    def test_labels_in_range(self, rng):
        ds = ClusterClassificationDataset(num_classes=5)
        _, y, _ = ds.sample(256, rng)
        assert y.min() >= 0 and y.max() < 5

    def test_labels_deterministic_given_cluster_and_input(self):
        """Same seed + same rng state -> identical batches."""
        ds = ClusterClassificationDataset(seed=3)
        a = ds.sample(16, np.random.default_rng(0))
        b = ds.sample(16, np.random.default_rng(0))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_cluster_skew_applied(self, rng):
        ds = ClusterClassificationDataset(num_clusters=8, cluster_skew=2.0)
        probs = ds.cluster_probs
        assert probs.max() > 2 * probs.min()
        assert probs.sum() == pytest.approx(1.0)

    def test_labels_depend_on_cluster_structure(self, rng):
        """Low-noise inputs from one cluster mostly share a label pattern
        distinct from another cluster's — the expert-specialization hook."""
        ds = ClusterClassificationDataset(
            num_classes=8, num_clusters=4, input_dim=16, noise=0.05, seed=1
        )
        x, y, c = ds.sample(2000, rng)
        per_cluster_majority = []
        for cluster in range(4):
            labels = y[c == cluster]
            if labels.size:
                counts = np.bincount(labels, minlength=8)
                per_cluster_majority.append(counts.max() / labels.size)
        assert np.mean(per_cluster_majority) > 0.5

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            ClusterClassificationDataset(num_classes=1)
        with pytest.raises(ConfigurationError):
            ClusterClassificationDataset(noise=-1)

    def test_rejects_bad_batch(self, rng):
        with pytest.raises(ConfigurationError):
            ClusterClassificationDataset().sample(0, rng)


class TestMarkovLM:
    def test_shapes_and_ranges(self, rng):
        ds = MarkovLMDataset(vocab_size=16, num_states=4)
        tokens, states = ds.sample(8, 20, rng)
        assert tokens.shape == (8, 20)
        assert states.shape == (8, 20)
        assert tokens.min() >= 0 and tokens.max() < 16
        assert states.min() >= 0 and states.max() < 4

    def test_stickiness_keeps_state_runs(self, rng):
        ds = MarkovLMDataset(num_states=4, stickiness=0.95, seed=0)
        _, states = ds.sample(16, 50, rng)
        stays = (states[:, 1:] == states[:, :-1]).mean()
        assert stays > 0.85

    def test_oracle_perplexity_bounds(self):
        ds = MarkovLMDataset(vocab_size=32, emission_concentration=0.2)
        ppl = ds.oracle_perplexity()
        assert 1.0 < ppl < 32.0

    def test_peakier_emissions_lower_oracle_ppl(self):
        peaky = MarkovLMDataset(emission_concentration=0.1, seed=0)
        flat = MarkovLMDataset(emission_concentration=5.0, seed=0)
        assert peaky.oracle_perplexity() < flat.oracle_perplexity()

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            MarkovLMDataset(vocab_size=1)
        with pytest.raises(ConfigurationError):
            MarkovLMDataset(stickiness=1.0)
        with pytest.raises(ConfigurationError):
            MarkovLMDataset(emission_concentration=0)
