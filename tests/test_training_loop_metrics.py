"""Unit tests for the training loop, metrics and convergence model."""

import numpy as np
import pytest

from repro.baselines import ExpertParallelSystem, FlexMoESystem, build_context
from repro.config import ClusterConfig, MoEModelConfig, WorkloadConfig
from repro.exceptions import SimulationError
from repro.training.convergence import ConvergenceModel, calibrate_alpha
from repro.training.loop import compare_systems, simulate_training
from repro.training.metrics import summarize_run, trajectory_from_results
from repro.workload.synthetic import make_trace


@pytest.fixture(scope="module")
def small_setup():
    cluster = ClusterConfig(num_nodes=2, gpus_per_node=4)
    model = MoEModelConfig("loop-test", 4, 256, 1024, 8)
    workload = WorkloadConfig(tokens_per_step=262_144, num_steps=8, seed=2)
    return model, cluster, workload


class TestSimulateTraining:
    def test_run_covers_all_steps(self, small_setup):
        model, cluster, workload = small_setup
        context = build_context(cluster, model, seed=0)
        trace = make_trace(model.num_experts, context.topology.num_gpus,
                           workload)
        run = simulate_training(ExpertParallelSystem(context), trace)
        assert len(run.results) == trace.num_steps
        assert run.total_time > 0

    def test_warmup_excluded(self, small_setup):
        model, cluster, workload = small_setup
        context = build_context(cluster, model, seed=0)
        trace = make_trace(model.num_experts, context.topology.num_gpus,
                           workload)
        run = simulate_training(
            ExpertParallelSystem(context), trace, warmup=3
        )
        assert len(run.results) == trace.num_steps - 3

    def test_invalid_warmup_rejected(self, small_setup):
        model, cluster, workload = small_setup
        context = build_context(cluster, model, seed=0)
        trace = make_trace(model.num_experts, context.topology.num_gpus,
                           workload)
        with pytest.raises(SimulationError):
            simulate_training(
                ExpertParallelSystem(context), trace, warmup=trace.num_steps
            )

    def test_moe_layers_scale_total_time(self, small_setup):
        model, cluster, workload = small_setup
        context = build_context(cluster, model, seed=0)
        trace = make_trace(model.num_experts, context.topology.num_gpus,
                           workload)
        system = ExpertParallelSystem(context)
        one = simulate_training(system, trace, moe_layers=1)
        system.reset()
        four = simulate_training(system, trace, moe_layers=4)
        assert four.total_time == pytest.approx(4 * one.total_time, rel=0.2)


class TestCompareSystems:
    def test_all_systems_run_same_trace(self, small_setup):
        model, cluster, workload = small_setup
        cmp = compare_systems(
            model, cluster, workload,
            systems=[ExpertParallelSystem, FlexMoESystem],
        )
        assert set(cmp.systems) == {"DeepSpeed", "FlexMoE"}
        ds = cmp["DeepSpeed"]
        fm = cmp["FlexMoE"]
        assert len(ds.results) == len(fm.results)
        # Same assigned tokens per step: identical trace.
        assert [r.assigned_tokens for r in ds.results] == [
            r.assigned_tokens for r in fm.results
        ]

    def test_flexmoe_full_token_efficiency(self, small_setup):
        model, cluster, workload = small_setup
        cmp = compare_systems(
            model, cluster, workload,
            systems=[ExpertParallelSystem, FlexMoESystem],
        )
        assert cmp["FlexMoE"].mean_token_efficiency == 1.0
        assert cmp["DeepSpeed"].mean_token_efficiency < 1.0

    def test_speedup_and_summary(self, small_setup):
        model, cluster, workload = small_setup
        cmp = compare_systems(
            model, cluster, workload,
            systems=[ExpertParallelSystem, FlexMoESystem],
        )
        assert cmp.speedup("FlexMoE") > 0
        assert "FlexMoE" in cmp.summary()


class TestMetrics:
    def test_summary_keys(self, small_setup):
        model, cluster, workload = small_setup
        context = build_context(cluster, model, seed=0)
        trace = make_trace(model.num_experts, context.topology.num_gpus,
                           workload)
        run = simulate_training(ExpertParallelSystem(context), trace)
        summary = summarize_run(list(run.results))
        for key in ("mean_step_time", "mean_token_efficiency", "total_time"):
            assert key in summary

    def test_trajectory(self, small_setup):
        model, cluster, workload = small_setup
        context = build_context(cluster, model, seed=0)
        trace = make_trace(model.num_experts, context.topology.num_gpus,
                           workload)
        run = simulate_training(ExpertParallelSystem(context), trace)
        traj = trajectory_from_results(list(run.results))
        tok, exp = traj.endpoint(window=3)
        assert 0 <= tok <= 1
        assert 0 <= exp <= 1
        assert traj.distance_to_ideal() >= 0

    def test_empty_results_rejected(self):
        with pytest.raises(SimulationError):
            summarize_run([])


class TestConvergenceModel:
    def test_full_efficiency_multiplier_one(self):
        model = ConvergenceModel()
        assert model.iteration_multiplier(1.0) == 1.0

    def test_dropping_increases_iterations(self):
        model = ConvergenceModel(alpha=1.0)
        assert model.iteration_multiplier(0.5) == pytest.approx(2.0)

    def test_diverted_credit_partial(self):
        model = ConvergenceModel(alpha=1.0, diverted_credit=0.5)
        # 50% diverted: effective = 0.5 + 0.25 = 0.75
        assert model.iteration_multiplier(0.5, 0.5) == pytest.approx(1 / 0.75)

    def test_time_to_quality(self):
        model = ConvergenceModel(alpha=1.0)
        assert model.time_to_quality(0.01, 1000, 1.0) == pytest.approx(10.0)
        assert model.time_to_quality(0.01, 1000, 0.5) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ConvergenceModel(alpha=-1)
        model = ConvergenceModel()
        with pytest.raises(SimulationError):
            model.iteration_multiplier(1.5)

    def test_calibrate_alpha_recovers_exponent(self):
        drops = np.array([0.2, 0.4, 0.6])
        truth = 0.9
        ratios = (1 / (1 - drops)) ** truth
        assert calibrate_alpha(drops, ratios) == pytest.approx(truth, abs=1e-6)

    def test_calibrate_rejects_empty(self):
        with pytest.raises(SimulationError):
            calibrate_alpha(np.array([0.0]), np.array([1.0]))
