"""Unit tests for the Scheduler loop (Algorithm 1)."""

import numpy as np
import pytest

from repro.config import SchedulerConfig
from repro.core.placement import Placement
from repro.core.policy import PolicyMaker
from repro.core.scheduler import Scheduler


def make_scheduler(cost_model, topology, **config_overrides):
    defaults = dict(slots_per_gpu=2, balance_threshold=1.15)
    defaults.update(config_overrides)
    config = SchedulerConfig(**defaults)
    placement = Placement.balanced(8, topology.num_gpus, config.slots_per_gpu)
    policy = PolicyMaker(cost_model)
    return Scheduler(placement, policy, config, topology)


def skewed(num_experts=8, num_gpus=8):
    assignment = np.full((num_experts, num_gpus), 1000, dtype=np.int64)
    assignment[0, :] = 50_000
    return assignment


def balanced(num_experts=8, num_gpus=8):
    return np.full((num_experts, num_gpus), 5000, dtype=np.int64)


class TestTriggering:
    def test_balanced_load_does_not_trigger(self, cost_model, topology):
        scheduler = make_scheduler(cost_model, topology)
        outcome = scheduler.on_step(balanced(), 0)
        assert not outcome.triggered
        assert outcome.actions == ()

    def test_skewed_load_triggers(self, cost_model, topology):
        scheduler = make_scheduler(cost_model, topology)
        outcome = scheduler.on_step(skewed(), 0)
        assert outcome.triggered

    def test_static_mode_triggers_on_interval(self, cost_model, topology):
        scheduler = make_scheduler(
            cost_model, topology, mode="static", static_interval=5
        )
        assert scheduler.should_trigger(balanced(), 0)
        assert not scheduler.should_trigger(balanced(), 3)
        assert scheduler.should_trigger(balanced(), 5)

    def test_variance_metric_mode(self, cost_model, topology):
        scheduler = make_scheduler(
            cost_model, topology, metric="variance", balance_threshold=1.05
        )
        assert scheduler.should_trigger(skewed(), 0)
        assert not scheduler.should_trigger(balanced(), 0)


class TestAdjustmentLoop:
    def test_improves_metric_on_skewed_load(self, cost_model, topology):
        scheduler = make_scheduler(cost_model, topology)
        assignment = skewed()
        outcome = scheduler.on_step(assignment, 0)
        assert outcome.metric_after <= outcome.metric_before

    def test_repeated_steps_converge(self, cost_model, topology):
        scheduler = make_scheduler(cost_model, topology)
        assignment = skewed()
        for step in range(12):
            outcome = scheduler.on_step(assignment, step)
        later_metric = outcome.metric_after
        first_metric = scheduler.history[0].metric_before
        assert later_metric < first_metric

    def test_placement_stays_valid_throughout(self, cost_model, topology, rng):
        scheduler = make_scheduler(cost_model, topology)
        for step in range(10):
            assignment = rng.integers(0, 20_000, (8, 8))
            scheduler.on_step(assignment, step)
            scheduler.placement.validate()

    def test_max_rounds_respected(self, cost_model, topology):
        scheduler = make_scheduler(cost_model, topology, max_plans_per_round=1)
        outcome = scheduler.on_step(skewed(), 0)
        assert outcome.rounds <= 1

    def test_migrate_disabled(self, cost_model, topology):
        from repro.core.primitives import Migrate

        scheduler = make_scheduler(cost_model, topology, migrate=False)
        outcome = scheduler.on_step(skewed(), 0)
        assert not any(isinstance(a, Migrate) for a in outcome.actions)


class TestBookkeeping:
    def test_history_records_every_step(self, cost_model, topology):
        scheduler = make_scheduler(cost_model, topology)
        for step in range(5):
            scheduler.on_step(balanced(), step)
        assert len(scheduler.history) == 5

    def test_trigger_rate(self, cost_model, topology):
        scheduler = make_scheduler(cost_model, topology)
        scheduler.on_step(balanced(), 0)
        scheduler.on_step(skewed(), 1)
        assert scheduler.trigger_rate() == pytest.approx(0.5)

    def test_total_actions_counts(self, cost_model, topology):
        scheduler = make_scheduler(cost_model, topology)
        scheduler.on_step(skewed(), 0)
        assert scheduler.total_actions() == sum(
            len(o.actions) for o in scheduler.history
        )
