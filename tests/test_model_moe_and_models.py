"""Unit tests for the MoE layer, transformer models, losses, optimizers."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.model.losses import (
    perplexity_from_loss,
    softmax_cross_entropy,
    top_k_accuracy,
)
from repro.model.moe_layer import MoELayer
from repro.model.optimizer import SGD, Adam
from repro.model.layers import Linear, Parameter
from repro.model.transformer import MoEClassifier, MoELanguageModel


@pytest.fixture
def moe(rng) -> MoELayer:
    return MoELayer(
        d_model=8, d_ffn=16, num_experts=4, top_k=2,
        balance_coef=0.0, capacity_factor=None, rng=rng,
    )


class TestMoELayer:
    def test_forward_shape(self, moe, rng):
        x = rng.normal(0, 1, (10, 8))
        assert moe.forward(x).shape == (10, 8)

    def test_stats_recorded(self, moe, rng):
        moe.forward(rng.normal(0, 1, (10, 8)))
        stats = moe.last_stats
        assert stats.expert_counts.sum() == 20  # top-2
        assert stats.dropped_slots == 0
        assert np.array_equal(stats.processed_counts, stats.expert_counts)

    def test_capacity_drops_overflow(self, rng):
        moe = MoELayer(8, 16, 4, 2, 0.0, capacity_factor=0.5, rng=rng)
        moe.forward(rng.normal(0, 1, (40, 8)))
        stats = moe.last_stats
        assert stats.capacity == 10  # 0.5 * 2 * 40 / 4
        assert (stats.processed_counts <= stats.capacity).all()
        assert stats.dropped_slots == stats.expert_counts.sum() - stats.processed_counts.sum()

    def test_eval_mode_never_drops(self, rng):
        moe = MoELayer(8, 16, 4, 2, 0.0, capacity_factor=0.25, rng=rng)
        moe.training = False
        moe.forward(rng.normal(0, 1, (40, 8)))
        assert moe.last_stats.dropped_slots == 0

    def test_input_gradient_numeric(self, moe, rng):
        x = rng.normal(0, 1, (6, 8))
        w = rng.normal(0, 1, (6, 8))

        def loss():
            return float((moe.forward(x) * w).sum())

        moe.forward(x)
        moe.zero_grad()
        analytic = moe.backward(w)
        eps = 1e-6
        for idx in [(0, 0), (3, 4), (5, 7)]:
            old = x[idx]
            x[idx] = old + eps
            up = loss()
            x[idx] = old - eps
            down = loss()
            x[idx] = old
            assert analytic[idx] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-5
            )

    def test_wrong_rank_rejected(self, moe):
        with pytest.raises(ModelError):
            moe.forward(np.zeros((2, 3, 8)))

    def test_assignment_matrix_exposed(self, moe, rng):
        moe.forward(rng.normal(0, 1, (10, 8)))
        assert moe.assignment_matrix().sum() == 20


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        expected = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss == pytest.approx(expected)
        assert grad.shape == (2, 2)

    def test_gradient_is_probs_minus_onehot(self):
        logits = np.zeros((1, 4))
        _, grad = softmax_cross_entropy(logits, np.array([2]))
        np.testing.assert_allclose(
            grad[0], np.array([0.25, 0.25, -0.75, 0.25])
        )

    def test_perplexity(self):
        assert perplexity_from_loss(0.0) == 1.0
        assert perplexity_from_loss(np.log(8)) == pytest.approx(8.0)

    def test_topk_accuracy(self):
        logits = np.array([[0.1, 0.9, 0.5], [0.9, 0.1, 0.5]])
        targets = np.array([1, 2])
        assert top_k_accuracy(logits, targets, 1) == 0.5
        assert top_k_accuracy(logits, targets, 2) == 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 5]))
        with pytest.raises(ModelError):
            perplexity_from_loss(-1.0)


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        p = Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(50):
            p.zero_grad()
            p.grad += 2 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 0.1

    def test_adam_descends_quadratic(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.5)
        for _ in range(100):
            p.zero_grad()
            p.grad += 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 0.5

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                p.zero_grad()
                p.grad += 2 * p.data
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_validation(self, rng):
        layer = Linear(2, 2, rng)
        with pytest.raises(ModelError):
            SGD(layer.parameters(), lr=0.0)
        with pytest.raises(ModelError):
            Adam(layer.parameters(), betas=(1.0, 0.9))
        with pytest.raises(ModelError):
            SGD([], lr=0.1)


class TestTaskModels:
    def test_classifier_trains(self, rng):
        model = MoEClassifier(
            input_dim=8, num_classes=3, d_model=16, num_layers=2,
            num_heads=2, d_ffn=32, num_experts=4, num_patches=2, seed=0,
        )
        opt = Adam(model.parameters(), lr=3e-3)
        x = rng.normal(0, 1, (64, 8))
        y = (x[:, 0] > 0).astype(int)
        first_loss = None
        for _ in range(40):
            logits = model.forward(x)
            loss, grad = softmax_cross_entropy(logits, y)
            if first_loss is None:
                first_loss = loss
            model.zero_grad()
            model.backward(grad)
            opt.step()
        assert loss < first_loss * 0.7

    def test_classifier_patch_validation(self):
        with pytest.raises(ModelError):
            MoEClassifier(input_dim=10, num_classes=2, num_patches=4)

    def test_lm_forward_shape(self, rng):
        model = MoELanguageModel(
            vocab_size=16, d_model=16, num_layers=2, num_heads=2,
            d_ffn=32, num_experts=4, seed=0,
        )
        tokens = rng.integers(0, 16, (2, 10))
        assert model.forward(tokens).shape == (2, 10, 16)

    def test_lm_trains(self, rng):
        model = MoELanguageModel(
            vocab_size=8, d_model=16, num_layers=2, num_heads=2,
            d_ffn=32, num_experts=4, seed=0,
        )
        opt = Adam(model.parameters(), lr=3e-3)
        # trivially predictable sequence
        tokens = np.tile(np.arange(8), (4, 2))
        first_loss = None
        for _ in range(30):
            logits = model.forward(tokens[:, :-1])
            loss, grad = softmax_cross_entropy(
                logits.reshape(-1, 8), tokens[:, 1:].reshape(-1)
            )
            if first_loss is None:
                first_loss = loss
            model.zero_grad()
            model.backward(grad.reshape(logits.shape))
            opt.step()
        assert loss < first_loss * 0.6

    def test_dropped_fraction_reporting(self, rng):
        model = MoEClassifier(
            input_dim=8, num_classes=3, d_model=16, num_layers=2,
            num_experts=4, capacity_factor=0.3, num_patches=2, seed=0,
        )
        model.forward(rng.normal(0, 1, (64, 8)))
        assert model.dropped_fraction() > 0

    def test_balance_loss_requires_forward(self):
        model = MoEClassifier(input_dim=8, num_classes=3, num_patches=2)
        with pytest.raises(ModelError):
            model.balance_loss()
