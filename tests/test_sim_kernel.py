"""Unit and property tests for the unified discrete-event kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim import (
    EventQueue,
    Priority,
    Scenario,
    SimClock,
    SimKernel,
    clamp_warmup,
    smoke_scale,
)


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance_to(2.5)
        assert clock.now == 2.5

    def test_cannot_move_backwards(self):
        clock = SimClock()
        clock.advance_to(3.0)
        with pytest.raises(SimulationError):
            clock.advance_to(2.0)


class TestEventQueue:
    def test_orders_by_time_then_priority_then_seq(self):
        queue = EventQueue()
        queue.push(2.0, Priority.FAILURE, lambda: None, "late-failure")
        queue.push(1.0, Priority.STEP, lambda: None, "early-step")
        queue.push(1.0, Priority.FAILURE, lambda: None, "early-failure")
        queue.push(1.0, Priority.STEP, lambda: None, "early-step-2")
        labels = [queue.pop().label for _ in range(4)]
        assert labels == [
            "early-failure", "early-step", "early-step-2", "late-failure",
        ]

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_declared_priority_order(self):
        # The ordering contract the scenario sources rely on: failures
        # before scheduling triggers before step execution before stream
        # drains; completions before arrivals before dispatches.
        assert Priority.FAILURE < Priority.TRIGGER < Priority.STEP
        assert (
            Priority.COMPLETION
            < Priority.ARRIVAL
            < Priority.STEP
            < Priority.STREAM
        )


@settings(max_examples=80, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.floats(0.0, 100.0, allow_nan=False),
            st.sampled_from(list(Priority)),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_queue_pops_stable_sorted_order(events):
    """Pop order == stable sort by (time, priority, insertion order)."""
    queue = EventQueue()
    for index, (time, priority) in enumerate(events):
        queue.push(time, priority, lambda: None, label=str(index))
    popped = [queue.pop() for _ in range(len(events))]
    expected = sorted(
        range(len(events)), key=lambda i: (events[i][0], int(events[i][1]), i)
    )
    assert [int(ev.label) for ev in popped] == expected


class TestSimKernel:
    def test_simultaneous_events_resolve_by_priority(self):
        kernel = SimKernel()
        seen = []
        # Scheduled in the WRONG order on purpose.
        kernel.schedule_at(1.0, lambda: seen.append("step"), Priority.STEP)
        kernel.schedule_at(1.0, lambda: seen.append("trigger"), Priority.TRIGGER)
        kernel.schedule_at(1.0, lambda: seen.append("failure"), Priority.FAILURE)
        kernel.run()
        assert seen == ["failure", "trigger", "step"]

    def test_cannot_schedule_into_past(self):
        kernel = SimKernel()
        with pytest.raises(SimulationError):
            kernel.schedule(-1.0, lambda: None)
        kernel.schedule_at(2.0, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule_at(1.0, lambda: None)

    def test_run_until_leaves_future_events(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule_at(1.0, lambda: seen.append("early"))
        kernel.schedule_at(10.0, lambda: seen.append("late"))
        assert kernel.run(until=5.0) == 5.0
        assert seen == ["early"]
        assert len(kernel) == 1
        kernel.run()
        assert seen == ["early", "late"]

    def test_callbacks_schedule_followups(self):
        kernel = SimKernel()
        seen = []

        def first():
            seen.append("first")
            kernel.schedule(1.0, lambda: seen.append("second"))

        kernel.schedule_at(1.0, first)
        assert kernel.run() == 2.0
        assert seen == ["first", "second"]

    def test_event_budget_guard(self):
        kernel = SimKernel()

        def recur():
            kernel.schedule(1.0, recur)

        kernel.schedule(1.0, recur)
        with pytest.raises(SimulationError):
            kernel.run(max_events=50)

    def test_trace_records_processed_events(self):
        kernel = SimKernel(record_trace=True)
        kernel.schedule_at(1.0, lambda: None, Priority.STEP, label="b")
        kernel.schedule_at(1.0, lambda: None, Priority.FAILURE, label="a")
        kernel.run()
        assert [entry[3] for entry in kernel.trace] == ["a", "b"]
        assert kernel.processed_events == 2


class _SeededSource:
    """Toy source: schedules seeded-jittered events across the horizon."""

    def prime(self, kernel, scenario):
        rng = np.random.default_rng(scenario.seed)
        for index, time in enumerate(
            rng.uniform(0.0, scenario.duration, size=25)
        ):
            kernel.schedule_at(
                time,
                lambda: None,
                priority=int(rng.integers(0, 50)),
                label=f"jitter[{index}]",
            )


class TestScenario:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="", sources=(_SeededSource(),))
        with pytest.raises(ConfigurationError):
            Scenario(name="x", sources=())
        with pytest.raises(ConfigurationError):
            Scenario(name="x", sources=(_SeededSource(),), duration=0)

    def test_same_seed_scenarios_identical_event_orderings(self):
        """The kernel determinism guarantee: byte-identical traces."""
        def trace(seed):
            scenario = Scenario(
                name="det", sources=(_SeededSource(),), duration=10.0, seed=seed
            )
            return scenario.run(record_trace=True).trace

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_run_honours_duration(self):
        scenario = Scenario(
            name="horizon", sources=(_SeededSource(),), duration=10.0
        )
        kernel = scenario.run()
        assert kernel.now == 10.0

    def test_smoke_scales_duration(self):
        scenario = Scenario(
            name="s", sources=(_SeededSource(),), duration=100.0
        )
        assert scenario.smoke().duration == 25.0
        assert scenario.smoke(floor=80).duration == 80.0
        unbounded = Scenario(name="s", sources=(_SeededSource(),))
        assert unbounded.smoke().duration is None


class TestSmokeHelpers:
    def test_smoke_scale_ints_and_floats(self):
        assert smoke_scale(80, floor=25) == 25
        assert smoke_scale(400, floor=10) == 100
        assert isinstance(smoke_scale(400, floor=10), int)
        assert smoke_scale(100.0, floor=8) == 25.0
        with pytest.raises(ConfigurationError):
            smoke_scale(-1)

    def test_smoke_scale_never_enlarges(self):
        """A run already at CI scale must not grow under --smoke (a
        seconds-unit horizon would otherwise blow up against the
        step-unit default floor)."""
        assert smoke_scale(10, floor=150) == 10
        assert smoke_scale(0.0115, floor=8) == 0.0115
        scenario = Scenario(
            name="tiny", sources=(_SeededSource(),), duration=0.5
        )
        assert scenario.smoke().duration == 0.5

    def test_experiment_scale_smoke_is_the_shared_policy(self):
        from repro.bench.harness import FULL, SMOKE

        assert SMOKE == FULL.smoke()
        assert SMOKE.num_steps == 25
        assert SMOKE.warmup == 8
        assert SMOKE.quality_steps == 150
        assert SMOKE.seeds == 1

    def test_clamp_warmup(self):
        assert clamp_warmup(5, 10) == 5
        assert clamp_warmup(10, 5) == 4
        assert clamp_warmup(3, 0) == 0


def _paired_kernels(record_trace=True):
    return (
        SimKernel(record_trace=record_trace, batch_drain=True),
        SimKernel(record_trace=record_trace, batch_drain=False),
    )


class TestBatchDrain:
    """The batched same-timestamp drain is trace-identical to the
    one-at-a-time reference drain (the ISSUE-6 kernel contract)."""

    def test_tied_group_dispatches_in_priority_then_seq_order(self):
        for kernel in _paired_kernels():
            seen = []
            kernel.schedule_at(1.0, lambda: seen.append("step"), Priority.STEP)
            kernel.schedule_at(
                1.0, lambda: seen.append("fail"), Priority.FAILURE
            )
            kernel.schedule_at(
                1.0, lambda: seen.append("arrive"), Priority.ARRIVAL
            )
            kernel.schedule_at(1.0, lambda: seen.append("step2"), Priority.STEP)
            kernel.run()
            assert seen == ["fail", "arrive", "step", "step2"]

    def test_reschedule_at_current_time_joins_the_group(self):
        """The dispatch-at-now idiom: an event scheduled at the current
        time from inside a callback fires within the same timestamp, in
        (priority, seq) position, under both drains."""
        runs = {}
        for kernel in _paired_kernels():
            seen = []

            def arrival(kernel=kernel, seen=seen):
                seen.append("arrival")
                kernel.schedule_at(
                    kernel.now,
                    lambda: seen.append("dispatch"),
                    Priority.STEP,
                )

            def completion(kernel=kernel, seen=seen):
                seen.append("completion")

            kernel.schedule_at(2.0, arrival, Priority.ARRIVAL)
            kernel.schedule_at(2.0, completion, Priority.COMPLETION)
            kernel.schedule_at(2.0, lambda: seen.append("stream"), Priority.STREAM)
            kernel.run()
            runs[kernel._batch_drain] = (seen, kernel.trace)
        assert runs[True][0] == ["completion", "arrival", "dispatch", "stream"]
        assert runs[True][0] == runs[False][0]
        assert runs[True][1] == runs[False][1]

    def test_budget_exhaustion_mid_group_restores_remainder(self):
        kernel = SimKernel(batch_drain=True)
        seen = []
        for i in range(6):
            kernel.schedule_at(1.0, lambda i=i: seen.append(i), Priority.STEP)
        with pytest.raises(SimulationError):
            kernel.run(max_events=3)
        assert seen == [0, 1, 2]
        # The undispatched half of the group went back to the heap and a
        # resumed run drains it in the original order.
        assert len(kernel) == 3
        kernel.run()
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_callback_exception_restores_undispatched_events(self):
        kernel = SimKernel(batch_drain=True)
        seen = []

        def boom():
            seen.append("boom")
            kernel.schedule_at(kernel.now, lambda: seen.append("buffered"))
            raise RuntimeError("callback failed")

        kernel.schedule_at(1.0, boom, Priority.FAILURE)
        kernel.schedule_at(1.0, lambda: seen.append("tied"), Priority.STEP)
        with pytest.raises(RuntimeError):
            kernel.run()
        # Both the tied group remainder AND the same-time event the
        # failing callback buffered survive for a resumed run, which
        # drains them in (priority, seq) order: "tied" (seq 1) before
        # the later-scheduled "buffered" (seq 2) -- exactly what the
        # serial drain would have done.
        assert len(kernel) == 2
        kernel.run()
        assert seen == ["boom", "tied", "buffered"]

    def test_run_until_leaves_future_events(self):
        for kernel in _paired_kernels(record_trace=False):
            seen = []
            kernel.schedule_at(1.0, lambda: seen.append("a"))
            kernel.schedule_at(1.0, lambda: seen.append("b"), Priority.FAILURE)
            kernel.schedule_at(10.0, lambda: seen.append("late"))
            assert kernel.run(until=5.0) == 5.0
            assert seen == ["b", "a"]
            assert len(kernel) == 1

    def test_singleton_groups_match_serial(self):
        runs = {}
        for kernel in _paired_kernels():
            def tick(t, kernel=kernel):
                if t < 5.0:
                    kernel.schedule(1.0, lambda: tick(t + 1.0))

            kernel.schedule_at(0.0, lambda: tick(0.0))
            kernel.run()
            runs[kernel._batch_drain] = kernel.trace
        assert runs[True] == runs[False]
        assert len(runs[True]) == 6


@settings(max_examples=120, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            # A tiny time domain forces heavy timestamp collisions.
            st.sampled_from([0.0, 1.0, 2.0]),
            st.sampled_from(list(Priority)),
            # Whether the callback re-schedules a follow-up at now.
            st.booleans(),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_batch_drain_trace_matches_serial(events):
    """Property: for random tie-heavy schedules whose callbacks may
    re-schedule at the current instant, the batched drain dispatches the
    exact (time, priority, seq) sequence of the reference drain."""
    traces = {}
    for drain in (True, False):
        kernel = SimKernel(record_trace=True, batch_drain=drain)

        def make(index, reschedule):
            def callback():
                if reschedule:
                    kernel.schedule_at(
                        kernel.now,
                        lambda: None,
                        Priority.STREAM,
                        label=f"follow-{index}",
                    )

            return callback

        for index, (time, priority, reschedule) in enumerate(events):
            kernel.schedule_at(
                time, make(index, reschedule), priority, label=str(index)
            )
        kernel.run()
        traces[drain] = kernel.trace
    assert traces[True] == traces[False]
