"""The unified telemetry layer: registry, sessions, taps, timeline.

Covers the three contracts docs/observability.md promises:

* instruments are deterministic and get-or-create by (name, labels);
* tap points are inert -- no active session means no recording and no
  behavioural difference (decision identity with telemetry on vs off);
* the kernel's legacy tuple trace and the Chrome mirror share one sink,
  so they can never drift.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, MoEModelConfig
from repro.core.cost_model import MemoizedStepCost, MoECostModel
from repro.core.placement import Placement
from repro.exceptions import ConfigurationError
from repro.serving.admission import AdmissionQueue, BatchingConfig
from repro.serving.requests import Request
from repro.serving.slo import LatencyWindow
from repro.telemetry import (
    DecisionTimeline,
    KernelTraceSink,
    MetricsRegistry,
    SpanTracer,
    metric_key,
)

MODEL = MoEModelConfig("tel", num_layers=2, d_model=256, d_ffn=1024, num_experts=8)
CLUSTER = ClusterConfig(num_nodes=1, gpus_per_node=4)


@pytest.fixture
def cost_model() -> MoECostModel:
    topology = ClusterTopology(CLUSTER)
    profile = Profiler(topology, noise=0.0, seed=0).profile(MODEL)
    return MoECostModel(profile, MODEL)


# ----------------------------------------------------------------------
# Registry instruments
# ----------------------------------------------------------------------
def test_metric_key_renders_sorted_labels():
    assert metric_key("memo.hits") == "memo.hits"
    assert (
        metric_key("memo.hits", phase="policy") == "memo.hits{phase=policy}"
    )
    # Label order never matters.
    assert metric_key("a", b=1, a=2) == metric_key("a", a=2, b=1)


def test_counter_get_or_create_and_monotonicity():
    registry = MetricsRegistry()
    counter = registry.counter("events", kind="fail")
    counter.inc()
    registry.counter("events", kind="fail").inc(2.0)
    assert registry.counter("events", kind="fail") is counter
    assert registry.value("events", kind="fail") == 3.0
    with pytest.raises(ConfigurationError):
        counter.inc(-1.0)


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("pool.live").set(8)
    registry.gauge("pool.live").set(6)
    assert registry.value("pool.live") == 6.0


def test_histogram_buckets_and_overflow():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", buckets=(0.1, 0.5, 1.0))
    for value in (0.05, 0.3, 0.3, 0.9, 5.0):
        hist.observe(value)
    assert hist.counts == [1, 2, 1, 1]  # last bucket = overflow
    assert hist.count == 5
    assert hist.total == pytest.approx(6.55)
    with pytest.raises(ConfigurationError):
        registry.histogram("bad", buckets=(1.0, 1.0))
    with pytest.raises(ConfigurationError):
        registry.histogram("empty", buckets=())


def test_snapshot_is_sorted_and_complete():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a", x=1).inc(2)
    registry.gauge("g").set(1.5)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert list(snap) == ["counters", "gauges", "histograms"]
    assert list(snap["counters"]) == sorted(snap["counters"])
    assert snap["counters"] == {"a{x=1}": 2.0, "b": 1.0}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"] == {
        "buckets": [1.0],
        "counts": [1, 0],
        "count": 1,
        "sum": 0.5,
    }
    assert len(registry) == 4
    assert registry.value("missing") is None


# ----------------------------------------------------------------------
# Session scoping
# ----------------------------------------------------------------------
def test_no_session_by_default():
    assert telemetry.current() is None


def test_session_activates_and_restores():
    with telemetry.session() as tel:
        assert telemetry.current() is tel
        assert tel.tracer is not None
    assert telemetry.current() is None


def test_nested_session_reuses_by_default():
    with telemetry.session() as outer:
        with telemetry.session() as inner:
            assert inner is outer
        # Inner exit must not deactivate the outer scope.
        assert telemetry.current() is outer


def test_fresh_session_on_reuse_false():
    with telemetry.session() as outer:
        with telemetry.session(reuse=False) as inner:
            assert inner is not outer
            assert telemetry.current() is inner
        assert telemetry.current() is outer


def test_suppressed_disables_inside_session():
    with telemetry.session():
        with telemetry.suppressed():
            assert telemetry.current() is None
        assert telemetry.current() is not None


def test_session_without_tracing():
    with telemetry.session(trace=False) as tel:
        assert tel.tracer is None
        # Decisions still land on the timeline without a tracer.
        tel.decision(1.0, "fail", "gpu[0]")
        assert len(tel.timeline) == 1


# ----------------------------------------------------------------------
# Decision timeline
# ----------------------------------------------------------------------
def test_timeline_record_query_and_export():
    timeline = DecisionTimeline()
    timeline.record(0.5, "trigger", "layer[0]", step=3)
    timeline.record(1.0, "migrate", "layer[0]", expert_a=1)
    timeline.record(2.0, "fail", "gpu[2]")
    assert timeline.kinds() == {"trigger": 1, "migrate": 1, "fail": 1}
    assert [e.kind for e in timeline.between(0.75, 1.5)] == ["migrate"]
    assert [e.time for e in timeline.of_kind("trigger", "fail")] == [0.5, 2.0]
    first = timeline.to_dicts()[0]
    assert first == {
        "time": 0.5,
        "kind": "trigger",
        "subject": "layer[0]",
        "details": {"step": 3},
    }


# ----------------------------------------------------------------------
# Kernel sink unification (legacy tuples + Chrome mirror, one path)
# ----------------------------------------------------------------------
def test_kernel_sink_feeds_tuples_and_track_identically():
    tracer = SpanTracer()
    track = tracer.new_track("k")
    sink = KernelTraceSink(True, track)
    sink.observe(0.25, 40, 7, "step[0]")
    assert sink.tuples == [(0.25, 40, 7, "step[0]")]
    assert sink.track is track
    slices = [e for e in tracer.events if e["ph"] == "X"]
    assert len(slices) == 1
    assert slices[0]["name"] == "step[0]"
    assert slices[0]["ts"] == pytest.approx(0.25 * 1e6)
    assert slices[0]["tid"] == 40
    assert slices[0]["args"] == {"seq": 7}


def test_kernel_trace_tuples_unchanged_by_tracer():
    from repro.sim.kernel import Priority, SimKernel

    def run(tracer):
        kernel = SimKernel(record_trace=True, tracer=tracer)
        for t, label in ((0.2, "b"), (0.1, "a"), (0.3, "c")):
            kernel.schedule_at(t, lambda: None, Priority.STEP, label=label)
        kernel.run()
        return kernel.trace

    bare = run(None)
    tracer = SpanTracer()
    mirrored = run(tracer.new_track("kernel"))
    assert mirrored == bare  # byte-for-byte determinism contract
    names = [e["name"] for e in tracer.events if e["ph"] == "X"]
    assert names == ["a", "b", "c"]


# ----------------------------------------------------------------------
# Tap points
# ----------------------------------------------------------------------
def test_memo_taps_count_per_phase(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    assignment = rng.integers(0, 1000, (8, 4))
    placement = Placement.balanced(8, 4, 2)
    with telemetry.session() as tel:
        memo.step_time(assignment, placement, phase="policy")
        memo.step_time(assignment, placement, phase="migration")
        counters = tel.registry.snapshot()["counters"]
    assert counters["memo.misses{phase=policy}"] == 1.0
    assert counters["memo.hits{phase=migration}"] == 1.0


def test_memo_publish_matches_stats(cost_model, rng):
    memo = MemoizedStepCost(cost_model)
    placement = Placement.balanced(8, 4, 2)
    a = rng.integers(0, 1000, (8, 4))
    memo.step_time(a, placement, phase="policy")
    memo.step_time(a, placement, phase="policy")
    registry = MetricsRegistry()
    memo.publish(registry)
    assert registry.value("memo.hits", phase="policy") == 1.0
    assert registry.value("memo.misses", phase="policy") == 1.0
    assert registry.value("memo.hit_rate") == pytest.approx(memo.hit_rate)


def _request(index: int, tokens: int = 100) -> Request:
    return Request(index=index, arrival=0.0, tokens=tokens, topic=0)


def test_admission_taps_count_admit_and_reject():
    queue = AdmissionQueue(
        BatchingConfig(max_batch_tokens=256, max_queue_tokens=256)
    )
    with telemetry.session() as tel:
        assert queue.offer(_request(0, 200))
        assert not queue.offer(_request(1, 100))  # 300 > 256: rejected
        counters = tel.registry.snapshot()["counters"]
    assert counters["admission.admitted"] == 1.0
    assert counters["admission.rejected"] == 1.0


def test_latency_window_publish():
    window = LatencyWindow(8)
    for value in (0.1, 0.2, 0.3):
        window.observe(value)
    registry = MetricsRegistry()
    window.publish(registry, engine="X")
    assert registry.value("serving.window.size", engine="X") == 3.0
    assert registry.value(
        "serving.window.p99_s", engine="X"
    ) == pytest.approx(window.p99())


def test_taps_are_silent_without_session():
    # No session: the same calls must neither record nor raise.
    queue = AdmissionQueue(BatchingConfig(max_batch_tokens=256))
    assert queue.offer(_request(0))
    assert telemetry.current() is None


# ----------------------------------------------------------------------
# Observation is inert: identical results with telemetry on vs off
# ----------------------------------------------------------------------
def test_pipeline_results_identical_with_and_without_telemetry():
    from repro.bench.harness import pipeline_run

    kwargs = dict(
        num_moe_layers=2, num_gpus=8, num_experts=8, num_steps=6,
        tokens_per_gpu=2048, d_model=256, d_ffn=1024, warmup=1, seed=0,
    )
    with telemetry.suppressed():
        baseline = pipeline_run(**kwargs)
    with telemetry.session(reuse=False) as tel:
        observed = pipeline_run(**kwargs)
        assert len(tel.tracer.events) > 0
        assert tel.registry.value("scheduler.triggers") is not None
    assert observed.mean_step_time == baseline.mean_step_time
    assert np.array_equal(observed.step_times, baseline.step_times)
