"""Kernel-vs-legacy identity: the re-hosted loops change nothing.

The ISSUE-5 contract: hosting the training, faults and serving loops on
the unified discrete-event kernel must preserve decision and metric
identity with the retired inline loops on seeded runs -- same placements
chosen, same per-step times, same per-request latencies.
"""

import numpy as np

from repro.baselines.base import build_context
from repro.baselines.flexmoe import FlexMoESystem
from repro.bench.harness import cluster_for
from repro.bench.serving import probe_batch_seconds
from repro.cluster.events import ElasticitySchedule
from repro.config import (
    ClusterConfig,
    FaultConfig,
    MoEModelConfig,
    SchedulerConfig,
    WorkloadConfig,
    auto_slots_per_gpu,
)
from repro.runtime.pipeline import build_engine
from repro.serving.admission import BatchingConfig
from repro.serving.baseline import (
    build_flexmoe_serving,
    build_multitenant_serving,
    build_static_serving,
)
from repro.serving.engine import TopicRoutingModel
from repro.serving.requests import RequestStream, RequestStreamConfig, TenantSpec
from repro.serving.slo import SLOConfig, TenantClass
from repro.training.loop import simulate_pipeline, simulate_training
from repro.workload.synthetic import (
    DriftingRoutingGenerator,
    make_multilayer_trace,
)

MODEL = MoEModelConfig(
    name="sim-identity",
    num_layers=4,
    d_model=1024,
    d_ffn=4096,
    num_experts=16,
)


def _trace(num_steps=8, num_gpus=8, seed=0):
    return make_multilayer_trace(
        2,
        MODEL.num_experts,
        num_gpus,
        WorkloadConfig(
            tokens_per_step=16_384 * num_gpus, num_steps=num_steps, seed=seed
        ),
    )


def _assert_pipeline_runs_identical(a, b):
    np.testing.assert_array_equal(a.step_times, b.step_times)
    assert a.final_placement_signatures == b.final_placement_signatures
    assert tuple(r.layer_actions for r in a.results) == tuple(
        r.layer_actions for r in b.results
    )
    np.testing.assert_array_equal(a.live_gpus_per_step, b.live_gpus_per_step)
    assert a.event_log == b.event_log


class TestRunPathIdentity:
    def test_pipeline_kernel_matches_legacy_loop(self):
        trace = _trace()
        runs = {}
        for kernel in (True, False):
            engine = build_engine(cluster_for(8), MODEL, num_moe_layers=2, seed=0)
            runs[kernel] = simulate_pipeline(engine, trace, kernel=kernel)
        _assert_pipeline_runs_identical(runs[True], runs[False])

    def test_single_layer_training_kernel_matches_legacy_loop(self):
        workload = WorkloadConfig(tokens_per_step=65_536, num_steps=6, seed=1)
        trace = DriftingRoutingGenerator(
            MODEL.num_experts, 8, workload
        ).generate()
        runs = {}
        for kernel in (True, False):
            context = build_context(cluster_for(8), MODEL, seed=1)
            runs[kernel] = simulate_training(
                FlexMoESystem(context), trace, kernel=kernel
            )
        np.testing.assert_array_equal(
            runs[True].step_times, runs[False].step_times
        )
        assert (
            runs[True].mean_token_efficiency
            == runs[False].mean_token_efficiency
        )
        assert runs[True].diverted_fraction == runs[False].diverted_fraction


class TestFaultsPathIdentity:
    def test_elastic_kernel_matches_legacy_loop(self):
        """Failure + recovery + straggler via an ElasticitySource vs the
        retired per-step polling: identical runs, identical event logs."""
        schedule = ElasticitySchedule.from_fault_config(
            FaultConfig(
                num_failures=1,
                failure_step=2,
                recovery_steps=3,
                num_stragglers=1,
                straggler_factor=0.5,
                straggler_step=1,
                seed=0,
            ),
            num_gpus=8,
        )
        trace = _trace(num_steps=8)
        slots = auto_slots_per_gpu(MODEL.num_experts, 8) + 2
        runs = {}
        for kernel in (True, False):
            engine = build_engine(
                cluster_for(8),
                MODEL,
                num_moe_layers=2,
                scheduler_config=SchedulerConfig(
                    speed_aware_balance=True, min_replicas=2,
                    slots_per_gpu=slots,
                ),
                elasticity=schedule,
                seed=0,
            )
            runs[kernel] = simulate_pipeline(engine, trace, kernel=kernel)
        _assert_pipeline_runs_identical(runs[True], runs[False])
        # The elasticity genuinely fired (this is not a vacuous identity).
        assert len(runs[True].event_log) == len(schedule)


def _build_servers(seed=0, with_faults=False, vectorized=True):
    num_layers, num_gpus, num_experts = 2, 8, 16
    base = probe_batch_seconds(num_layers, num_gpus, num_experts, 4096, seed=seed)
    slo = SLOConfig(
        latency_target=8 * base,
        trigger_p99=3 * base,
        queue_limit_tokens=8192.0,
    )
    batching = BatchingConfig(max_batch_tokens=4096, max_queue_tokens=65_536)
    rate = 0.9 * (4096 / base) / 512
    requests = RequestStream(
        RequestStreamConfig(
            arrival="bursty",
            rate_rps=rate,
            num_requests=100,
            mean_tokens=512,
            max_tokens=4096,
            num_topics=4,
            seed=seed,
        )
    ).generate()
    model = MoEModelConfig(
        name="sim-identity-serving",
        num_layers=2 * num_layers,
        d_model=1024,
        d_ffn=8192,
        num_experts=num_experts,
    )
    routing = TopicRoutingModel(num_layers, num_experts, 4, skew=2.0, seed=seed)
    elasticity = (
        ElasticitySchedule.from_fault_config(
            FaultConfig(
                num_failures=1, failure_step=4, recovery_steps=6, seed=seed
            ),
            num_gpus,
        )
        if with_faults
        else None
    )
    kwargs = dict(
        num_moe_layers=num_layers,
        routing=routing,
        elasticity=elasticity,
        skew=2.0,
        seed=seed,
        vectorized=vectorized,
    )
    cluster = cluster_for(num_gpus)
    return (
        lambda: build_flexmoe_serving(
            cluster, model, requests, batching, slo, **kwargs
        ),
        lambda: build_static_serving(
            cluster, model, requests, batching, slo, **kwargs
        ),
    )


class TestServePathIdentity:
    def _assert_reports_identical(self, a, b):
        assert a.records == b.records
        assert a.rejected == b.rejected
        assert a.num_batches == b.num_batches
        assert a.sim_duration == b.sim_duration
        assert a.placement_actions == b.placement_actions

    def test_dynamic_server_kernel_matches_legacy_loop(self):
        build_flex, _ = _build_servers(seed=0)
        kernel_report = build_flex().run(kernel=True)
        legacy_report = build_flex().run(kernel=False)
        self._assert_reports_identical(kernel_report, legacy_report)
        assert kernel_report.num_batches > 0

    def test_static_server_kernel_matches_legacy_loop(self):
        _, build_static = _build_servers(seed=1)
        self._assert_reports_identical(
            build_static().run(kernel=True), build_static().run(kernel=False)
        )

    def test_serving_with_faults_kernel_matches_legacy_loop(self):
        build_flex, _ = _build_servers(seed=0, with_faults=True)
        kernel_report = build_flex().run(kernel=True)
        legacy_report = build_flex().run(kernel=False)
        self._assert_reports_identical(kernel_report, legacy_report)


class TestHotPathIdentity:
    """ISSUE-6 contract: the hot-path overhaul (batch-drain kernel, lazy
    bulk admission, columnar serving bookkeeping) is observationally
    identical to the retained reference paths on seeded runs."""

    def _assert_reports_identical(self, a, b):
        assert a.records == b.records
        assert a.rejected == b.rejected
        assert a.num_batches == b.num_batches
        assert a.sim_duration == b.sim_duration
        assert a.placement_actions == b.placement_actions
        assert a.summary() == b.summary()

    def test_batch_drain_trace_matches_serial_on_serving_scenario(self):
        from repro.sim import Scenario

        build_flex, _ = _build_servers(seed=2)
        runs = {}
        for drain in (True, False):
            server = build_flex()
            run = server.event_source()
            kernel = Scenario(
                name="drain-identity", sources=(run.source,)
            ).run(record_trace=True, batch_drain=drain)
            runs[drain] = (kernel.trace, kernel.processed_events, run.report())
        assert runs[True][0] == runs[False][0]
        assert runs[True][1] == runs[False][1]
        self._assert_reports_identical(runs[True][2], runs[False][2])
        # Ties genuinely occurred (completion + admissions + dispatch at
        # one instant), so this is not a vacuous identity.
        times = [entry[0] for entry in runs[True][0]]
        assert len(times) != len(set(times))

    def test_fast_stack_report_matches_reference_stack(self):
        """The full fast stack (lazy bulk admission + batch drain +
        columnar bookkeeping) against the full reference stack
        (per-request arrivals + serial drain + per-request records)."""
        from repro.sim import Scenario

        def run_stack(fast):
            build_flex, _ = _build_servers(seed=0)
            server = build_flex()
            server._vectorized = fast
            run = server.event_source(lazy_admission=fast)
            Scenario(name="stack-identity", sources=(run.source,)).run(
                batch_drain=fast
            )
            return run.report()

        fast = run_stack(True)
        reference = run_stack(False)
        self._assert_reports_identical(fast, reference)
        assert fast.num_batches > 0

    def test_vectorized_builder_reports_match_per_request_path(self):
        """The engine-level ``vectorized`` flag (columnar bookkeeping +
        lazy admission + batched window ingestion) changes no report
        field on either the dynamic or the static server."""
        for seed, pick in ((0, 0), (1, 1)):
            reports = []
            for vectorized in (True, False):
                builders = _build_servers(seed=seed, vectorized=vectorized)
                reports.append(builders[pick]().run(kernel=True))
            self._assert_reports_identical(reports[0], reports[1])
            assert reports[0].num_batches > 0


def _multitenant_fixture(seed=0, vectorized=True, num_tenants=1):
    """One-or-two-tenant servers sharing the scenario of _build_servers."""
    num_layers, num_gpus, num_experts = 2, 8, 16
    base = probe_batch_seconds(num_layers, num_gpus, num_experts, 4096,
                               seed=seed)
    slo = SLOConfig(
        latency_target=8 * base,
        trigger_p99=3 * base,
        queue_limit_tokens=8192.0,
    )
    batching = BatchingConfig(max_batch_tokens=4096, max_queue_tokens=65_536)
    rate = 0.9 * (4096 / base) / 512
    stream = RequestStreamConfig(
        arrival="bursty",
        rate_rps=rate,
        num_requests=100,
        mean_tokens=512,
        max_tokens=4096,
        num_topics=4,
        seed=seed,
    )
    tenants = [
        TenantSpec(
            name="only",
            stream=stream,
            tenant_class=TenantClass("interactive", slo, priority=10),
        )
    ]
    if num_tenants == 2:
        tenants.append(
            TenantSpec(
                name="bulk",
                stream=stream.replace(
                    arrival="poisson", rate_rps=rate / 4,
                    num_requests=40, seed=seed + 1,
                ),
                tenant_class=TenantClass(
                    "batch", SLOConfig(latency_target=32 * base)
                ),
                quota_tokens=2048,
            )
        )
    model = MoEModelConfig(
        name="sim-identity-serving",
        num_layers=2 * num_layers,
        d_model=1024,
        d_ffn=8192,
        num_experts=num_experts,
    )
    routing = TopicRoutingModel(num_layers, num_experts, 4, skew=2.0,
                                seed=seed)
    return dict(
        cluster=cluster_for(num_gpus),
        model=model,
        tenants=tuple(tenants),
        batching=batching,
        num_moe_layers=num_layers,
        routing=routing,
        skew=2.0,
        seed=seed,
        vectorized=vectorized,
    ), stream, slo


class TestMultiTenantIdentity:
    """ISSUE-7 contract: one-tenant multi-tenant serving reduces exactly
    to the single-stream path, and the vectorized multi-tenant
    bookkeeping changes no report field."""

    def _assert_reports_identical(self, a, b):
        assert a.records == b.records
        assert a.rejected == b.rejected
        assert a.num_batches == b.num_batches
        assert a.sim_duration == b.sim_duration
        assert a.placement_actions == b.placement_actions
        assert a.summary() == b.summary()

    def test_single_tenant_reduction_matches_single_stream_path(self):
        """A one-tenant TenantSpec run (priority admission, preemption
        armed but unreachable) is report-identical to the plain
        single-stream dynamic server on the same seeded scenario."""
        for vectorized in (True, False):
            kwargs, stream, slo = _multitenant_fixture(
                seed=0, vectorized=vectorized
            )
            mt_report = build_multitenant_serving(**kwargs).run()
            requests = RequestStream(stream).generate()
            plain_report = build_flexmoe_serving(
                kwargs["cluster"], kwargs["model"], requests,
                kwargs["batching"], slo,
                num_moe_layers=kwargs["num_moe_layers"],
                routing=kwargs["routing"], skew=2.0, seed=0,
                vectorized=vectorized,
            ).run()
            self._assert_reports_identical(mt_report, plain_report)
            assert mt_report.num_batches > 0
            # The reduction still carries its tenancy section.
            assert mt_report.tenancy is not None
            assert plain_report.tenancy is None

    def test_single_tenant_fifo_policy_also_reduces(self):
        kwargs, stream, slo = _multitenant_fixture(seed=1)
        mt_report = build_multitenant_serving(
            **kwargs, admission_policy="fifo", preemption=False
        ).run()
        plain_report = build_flexmoe_serving(
            kwargs["cluster"], kwargs["model"],
            RequestStream(stream).generate(), kwargs["batching"], slo,
            num_moe_layers=kwargs["num_moe_layers"],
            routing=kwargs["routing"], skew=2.0, seed=1, vectorized=True,
        ).run()
        self._assert_reports_identical(mt_report, plain_report)

    def test_multitenant_vectorized_matches_per_request_path(self):
        """Columnar tenant bookkeeping vs per-request records on a real
        two-tenant mix: identical reports, identical tenancy counters."""
        reports = []
        for vectorized in (True, False):
            kwargs, _, _ = _multitenant_fixture(
                seed=0, vectorized=vectorized, num_tenants=2
            )
            reports.append(build_multitenant_serving(**kwargs).run())
        self._assert_reports_identical(reports[0], reports[1])
        assert reports[0].tenancy == reports[1].tenancy
        assert reports[0].per_class_summary() == reports[1].per_class_summary()
        assert reports[0].num_batches > 0
