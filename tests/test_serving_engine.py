"""The serving engine: latency accounting, determinism, SLO machinery."""

import numpy as np
import pytest

from repro.bench.harness import cluster_for
from repro.config import FaultConfig, MoEModelConfig
from repro.cluster.events import ElasticitySchedule
from repro.exceptions import ConfigurationError
from repro.serving import (
    BatchingConfig,
    Request,
    RequestStream,
    RequestStreamConfig,
    SLOConfig,
    ServingReport,
    TopicRoutingModel,
    build_flexmoe_serving,
    build_static_serving,
)
from repro.serving.slo import LatencyWindow, RequestRecord


def small_model(num_moe_layers=2, num_experts=8):
    return MoEModelConfig(
        name="serving-test",
        num_layers=2 * num_moe_layers,
        d_model=256,
        d_ffn=1024,
        num_experts=num_experts,
    )


def small_stream(num_requests=60, seed=0, **overrides):
    base = dict(
        arrival="bursty",
        rate_rps=20_000.0,
        num_requests=num_requests,
        mean_tokens=256,
        max_tokens=2048,
        num_topics=3,
        topic_drift=0.4,
        seed=seed,
    )
    base.update(overrides)
    return RequestStream(RequestStreamConfig(**base)).generate()


def build_pair(requests, seed=0, faults=None, num_moe_layers=2, num_experts=8):
    cluster = cluster_for(4)
    model = small_model(num_moe_layers, num_experts)
    batching = BatchingConfig(max_batch_tokens=2048, max_queue_tokens=32_768)
    slo = SLOConfig(latency_target=0.01, queue_limit_tokens=4096)
    elasticity = (
        ElasticitySchedule.from_fault_config(faults, 4)
        if faults is not None
        else None
    )
    kwargs = dict(
        num_moe_layers=num_moe_layers, elasticity=elasticity, seed=seed
    )
    flex = build_flexmoe_serving(
        cluster, model, requests, batching, slo, **kwargs
    )
    static = build_static_serving(
        cluster, model, requests, batching, slo, **kwargs
    )
    return flex, static


class TestTopicRoutingModel:
    def test_profiles_are_distributions(self):
        routing = TopicRoutingModel(2, 8, 3, seed=0)
        for layer in range(2):
            for topic in range(3):
                probs = routing.topic_profile(layer, topic)
                assert probs.shape == (8,)
                assert probs.sum() == pytest.approx(1.0)
                assert (probs > 0).all()

    def test_layers_permute_independently(self):
        routing = TopicRoutingModel(2, 16, 1, skew=1.3, seed=0)
        a = routing.topic_profile(0, 0)
        b = routing.topic_profile(1, 0)
        assert sorted(a) == pytest.approx(sorted(b))
        assert not np.allclose(a, b)

    def test_batch_probs_token_weighted(self):
        routing = TopicRoutingModel(1, 8, 2, seed=0)
        heavy = Request(index=0, arrival=0.0, tokens=900, topic=0)
        light = Request(index=1, arrival=0.0, tokens=100, topic=1)
        mixed = routing.batch_probs(0, [heavy, light])
        expected = 0.9 * routing.topic_profile(0, 0) + 0.1 * routing.topic_profile(0, 1)
        assert mixed == pytest.approx(expected)


class TestLatencyAccounting:
    """Acceptance: per-request latency = queue wait + execute time."""

    def test_records_decompose_latency(self):
        flex, _ = build_pair(small_stream())
        report = flex.run()
        assert report.records
        for record in report.records:
            assert record.queue_time >= 0
            assert record.execute_time > 0
            assert record.latency == pytest.approx(
                record.queue_time + record.execute_time
            )
            assert record.start >= record.request.arrival
            assert record.queue_time == pytest.approx(
                record.start - record.request.arrival
            )
            assert record.finish == pytest.approx(
                record.start + record.execute_time
            )

    def test_batch_mates_share_execute_time(self):
        flex, _ = build_pair(small_stream())
        report = flex.run()
        by_start = {}
        for record in report.records:
            by_start.setdefault(record.start, set()).add(record.execute_time)
        assert all(len(times) == 1 for times in by_start.values())

    def test_every_offered_request_is_accounted(self):
        requests = small_stream(num_requests=80)
        flex, _ = build_pair(requests)
        report = flex.run()
        served = {r.request.index for r in report.records}
        rejected = {r.index for r in report.rejected}
        assert served | rejected == {r.index for r in requests}
        assert not served & rejected
        assert report.offered_tokens == sum(r.tokens for r in requests)

    def test_clock_monotone_across_batches(self):
        flex, _ = build_pair(small_stream())
        report = flex.run()
        starts = [r.start for r in report.records]
        assert starts == sorted(starts)
        assert report.sim_duration >= max(r.finish for r in report.records) - 1e-12

    def test_no_cold_start_spike(self):
        """The warm-up pre-pays communicator creation: the first batch's
        execute time stays within an order of magnitude of the median."""
        flex, _ = build_pair(small_stream())
        report = flex.run()
        execs = report.execute_times
        assert execs[0] < 10 * np.median(execs)


class TestDeterminismAndBaseline:
    def test_same_seed_same_report(self):
        requests = small_stream()
        a = build_pair(requests, seed=3)[0].run()
        b = build_pair(requests, seed=3)[0].run()
        assert a.num_batches == b.num_batches
        assert np.allclose(a.latencies, b.latencies)
        assert a.sim_duration == pytest.approx(b.sim_duration)

    def test_static_baseline_never_rebalances(self):
        requests = small_stream()
        flex, static = build_pair(requests)
        static_report = static.run()
        assert static_report.engine == "StaticServing"
        assert static_report.placement_actions == 0
        placements = static.engine.placements()
        balanced = placements[0].counts
        assert all(np.array_equal(p.counts, balanced) for p in placements)

    def test_engine_names(self):
        requests = small_stream(num_requests=20)
        flex, static = build_pair(requests)
        assert flex.run().engine == "FlexMoE-serving"
        assert static.run().engine == "StaticServing"


class TestElasticityComposition:
    def test_serving_continues_through_failure_and_recovery(self):
        requests = small_stream(num_requests=120, rate_rps=40_000.0)
        faults = FaultConfig(
            num_failures=1, failure_step=3, recovery_steps=6, seed=0
        )
        flex, static = build_pair(requests, faults=faults)
        report = flex.run()
        # Every request was either served or shed by backpressure; the
        # stream outlived the failure.
        assert len(report.records) + len(report.rejected) == 120
        kinds = [ev.kind for _, ev in flex.engine.event_log]
        assert "fail" in kinds
        # The pool healed: all devices live again at the end.
        assert flex.engine.cluster_state.num_live == 4
        # Static serving also survives (forced eviction still happens).
        static_report = static.run()
        assert len(static_report.records) + len(static_report.rejected) == 120

    def test_engine_rejects_mismatched_routing_model(self):
        requests = small_stream(num_requests=10)
        cluster = cluster_for(4)
        model = small_model(num_moe_layers=2)
        routing = TopicRoutingModel(3, 8, 3, seed=0)  # wrong layer count
        with pytest.raises(ConfigurationError):
            build_flexmoe_serving(
                cluster, model, requests,
                BatchingConfig(max_batch_tokens=1024),
                SLOConfig(latency_target=0.01),
                num_moe_layers=2, routing=routing,
            )


class TestSLOPrimitives:
    def test_latency_window_p99(self):
        window = LatencyWindow(window=4)
        assert window.p99() is None
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            window.observe(value)
        # Window keeps the last four: 0.2..0.5.
        assert window.p99() == pytest.approx(
            np.percentile([0.2, 0.3, 0.4, 0.5], 99)
        )

    def test_slo_config_defaults_and_validation(self):
        slo = SLOConfig(latency_target=1.0)
        assert slo.effective_trigger_p99 == pytest.approx(0.6)
        assert slo.replace(trigger_p99=0.2).effective_trigger_p99 == 0.2
        with pytest.raises(ConfigurationError):
            SLOConfig(latency_target=0.0)
        with pytest.raises(ConfigurationError):
            SLOConfig(latency_target=1.0, window=0)

    def test_report_percentiles_and_goodput(self):
        slo = SLOConfig(latency_target=0.5)
        requests = [
            Request(index=i, arrival=0.0, tokens=100, topic=0)
            for i in range(4)
        ]
        records = tuple(
            RequestRecord(
                request=requests[i], start=0.0,
                queue_time=q, execute_time=0.1,
            )
            for i, q in enumerate((0.0, 0.1, 0.2, 0.9))
        )
        report = ServingReport(
            engine="test", records=records,
            rejected=(Request(index=9, arrival=0.0, tokens=100, topic=0),),
            slo=slo, num_batches=4, sim_duration=2.0,
        )
        assert report.p50 == pytest.approx(np.percentile(report.latencies, 50))
        # Three of four served within the 0.5 s SLO; the rejected request
        # counts as a miss.
        assert report.slo_attainment == pytest.approx(3 / 5)
        assert report.goodput_tokens_per_s == pytest.approx(300 / 2.0)
        assert report.offered_tokens == 500
        summary = report.summary()
        assert summary["requests_rejected"] == 1.0
        assert summary["p99_latency_s"] == pytest.approx(report.p99)


class TestLatencyWindowBatchIngestion:
    def test_observe_batch_equals_sequential_observe(self):
        rng = np.random.default_rng(0)
        for window in (1, 3, 64):
            for sizes in ((5,), (2, 7, 1), (100,), (64,), (63, 2)):
                sequential = LatencyWindow(window)
                batched = LatencyWindow(window)
                for size in sizes:
                    chunk = rng.exponential(size=size)
                    for value in chunk:
                        sequential.observe(float(value))
                    batched.observe_batch(chunk)
                    assert len(batched) == len(sequential)
                    assert batched.p99() == sequential.p99()

    def test_p99_is_bit_identical_to_np_percentile(self):
        rng = np.random.default_rng(1)
        for count in (1, 2, 5, 63, 64, 200):
            window = LatencyWindow(64)
            values = rng.exponential(size=count)
            window.observe_batch(values)
            live = values[-64:]
            assert window.p99() == float(np.percentile(live, 99.0))


from hypothesis import given, settings, strategies as st


@settings(max_examples=60, deadline=None)
@given(
    window=st.integers(1, 16),
    chunks=st.lists(
        st.lists(
            st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False),
            min_size=0,
            max_size=40,
        ),
        min_size=1,
        max_size=6,
    ),
)
def test_observe_batch_property(window, chunks):
    """Property: batched ingestion is indistinguishable from per-element
    observation for any chunking, including chunks larger than the
    window (full-overwrite path) and wrap-arounds."""
    sequential = LatencyWindow(window)
    batched = LatencyWindow(window)
    for chunk in chunks:
        for value in chunk:
            sequential.observe(value)
        batched.observe_batch(np.array(chunk, dtype=float))
        assert len(batched) == len(sequential)
        assert batched.p99() == sequential.p99()


class TestAdmissionQueueMeta:
    def _requests(self, specs):
        return [
            Request(index=i, arrival=a, tokens=t, topic=p)
            for i, (a, t, p) in enumerate(specs)
        ]

    def test_collect_meta_columns_mirror_popped_batch(self):
        from repro.serving.admission import AdmissionQueue

        queue = AdmissionQueue(
            BatchingConfig(max_batch_tokens=300), collect_meta=True
        )
        requests = self._requests(
            [(0.0, 100, 1), (0.5, 150, 2), (1.0, 200, 0), (1.5, 50, 3)]
        )
        for request in requests:
            assert queue.offer(request)
        batch = queue.next_batch()
        assert batch == tuple(requests[:2])
        np.testing.assert_array_equal(
            queue.last_batch_arrivals, [0.0, 0.5]
        )
        np.testing.assert_array_equal(queue.last_batch_tokens, [100, 150])
        np.testing.assert_array_equal(queue.last_batch_topics, [1, 2])
        # Second pop: the columns advance with the queue.
        batch = queue.next_batch()
        assert batch == tuple(requests[2:])
        np.testing.assert_array_equal(queue.last_batch_tokens, [200, 50])

    def test_rejected_requests_never_enter_meta(self):
        from repro.serving.admission import AdmissionQueue

        queue = AdmissionQueue(
            BatchingConfig(max_batch_tokens=100, max_queue_tokens=150),
            collect_meta=True,
        )
        admitted = self._requests([(0.0, 100, 0)])[0]
        rejected = Request(index=1, arrival=0.1, tokens=100, topic=1)
        assert queue.offer(admitted)
        assert not queue.offer(rejected)
        queue.next_batch()
        np.testing.assert_array_equal(queue.last_batch_tokens, [100])
        np.testing.assert_array_equal(queue.last_batch_topics, [0])

    def test_meta_disabled_by_default(self):
        from repro.serving.admission import AdmissionQueue

        queue = AdmissionQueue(BatchingConfig(max_batch_tokens=100))
        queue.offer(self._requests([(0.0, 50, 0)])[0])
        queue.next_batch()
        assert queue.last_batch_tokens is None
