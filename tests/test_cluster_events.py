"""Elastic cluster substrate: state, event schedules, heterogeneity."""

import numpy as np
import pytest

from repro.cluster.events import (
    ClusterEvent,
    ClusterState,
    ElasticitySchedule,
    redistribute_assignment,
)
from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, FaultConfig, MoEModelConfig, WorkloadConfig
from repro.core.cost_model import MemoizedStepCost, MoECostModel
from repro.core.placement import Placement
from repro.exceptions import ConfigurationError, ElasticityError
from repro.workload.synthetic import DriftingRoutingGenerator


SMALL_MODEL = MoEModelConfig(
    name="events-test", num_layers=2, d_model=64, d_ffn=256, num_experts=4
)


# ----------------------------------------------------------------------
# ClusterEvent
# ----------------------------------------------------------------------
class TestClusterEvent:
    def test_valid_kinds(self):
        for kind in ("fail", "recover", "slowdown", "restore"):
            ClusterEvent(step=0, kind=kind, gpu=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"step": -1, "kind": "fail", "gpu": 0},
            {"step": 0, "kind": "explode", "gpu": 0},
            {"step": 0, "kind": "fail", "gpu": -1},
            {"step": 0, "kind": "slowdown", "gpu": 0, "factor": 0.0},
        ],
    )
    def test_invalid_events(self, kwargs):
        with pytest.raises(ElasticityError):
            ClusterEvent(**kwargs)


# ----------------------------------------------------------------------
# ClusterState
# ----------------------------------------------------------------------
class TestClusterState:
    def test_initial_state_is_pristine(self):
        state = ClusterState(4)
        assert state.pristine
        assert state.num_live == 4
        assert state.version == 0
        assert state.live_gpus() == (0, 1, 2, 3)

    def test_fail_and_recover_cycle(self):
        state = ClusterState(4)
        state.fail(2)
        assert not state.is_alive(2)
        assert state.num_live == 3
        assert not state.pristine
        state.recover(2)
        assert state.is_alive(2)
        assert state.pristine

    def test_recovery_clears_prior_slowdown(self):
        # A device that was throttled before dying rejoins as a rebooted
        # or replacement unit at nominal speed.
        state = ClusterState(4)
        state.set_speed(1, 0.5)
        state.fail(1)
        state.recover(1)
        assert state.speed_of(1) == 1.0

    def test_every_mutation_bumps_version(self):
        state = ClusterState(4)
        state.fail(1)
        state.recover(1)
        state.set_speed(0, 0.5)
        assert state.version == 3

    def test_double_fail_rejected(self):
        state = ClusterState(4)
        state.fail(1)
        with pytest.raises(ElasticityError):
            state.fail(1)

    def test_recover_alive_rejected(self):
        state = ClusterState(4)
        with pytest.raises(ElasticityError):
            state.recover(0)

    def test_last_device_cannot_fail(self):
        state = ClusterState(2)
        state.fail(0)
        with pytest.raises(ElasticityError, match="last live device"):
            state.fail(1)

    def test_speed_factor_validation(self):
        state = ClusterState(2)
        state.set_speed(0, 0.25)
        assert state.speed_of(0) == 0.25
        with pytest.raises(ElasticityError):
            state.set_speed(0, -1.0)

    def test_gpu_bounds_checked(self):
        state = ClusterState(2)
        with pytest.raises(ElasticityError):
            state.fail(7)


# ----------------------------------------------------------------------
# ElasticitySchedule
# ----------------------------------------------------------------------
class TestElasticitySchedule:
    def test_events_sorted_and_grouped_by_step(self):
        schedule = ElasticitySchedule(
            [
                ClusterEvent(step=5, kind="fail", gpu=1),
                ClusterEvent(step=2, kind="slowdown", gpu=0, factor=0.5),
                ClusterEvent(step=5, kind="slowdown", gpu=2, factor=0.8),
            ]
        )
        assert [ev.step for ev in schedule.events] == [2, 5, 5]
        assert len(schedule.events_at(5)) == 2
        assert schedule.events_at(3) == ()
        assert schedule.first_failure_step() == 5
        assert schedule.affected_gpus() == (0, 1, 2)

    def test_from_fault_config_is_deterministic(self):
        config = FaultConfig(
            num_failures=2, failure_step=4, recovery_steps=6,
            num_stragglers=2, straggler_step=1, seed=11,
        )
        a = ElasticitySchedule.from_fault_config(config, 8)
        b = ElasticitySchedule.from_fault_config(config, 8)
        assert a.events == b.events
        # Two failures + two recoveries + two slowdowns.
        assert len(a) == 6

    def test_different_seed_changes_victims(self):
        schedules = {
            ElasticitySchedule.from_fault_config(
                FaultConfig(num_failures=2, seed=s), 16
            ).affected_gpus()
            for s in range(6)
        }
        assert len(schedules) > 1

    def test_failures_hit_distinct_gpus(self):
        config = FaultConfig(num_failures=7, failure_step=0, failure_spacing=1)
        schedule = ElasticitySchedule.from_fault_config(config, 8)
        failed = [ev.gpu for ev in schedule.events if ev.kind == "fail"]
        assert len(set(failed)) == 7

    def test_cannot_fail_every_device(self):
        with pytest.raises(ElasticityError):
            ElasticitySchedule.from_fault_config(
                FaultConfig(num_failures=4), 4
            )

    def test_straggler_duration_emits_restore(self):
        config = FaultConfig(
            num_failures=0, num_stragglers=1,
            straggler_step=3, straggler_duration=5,
        )
        schedule = ElasticitySchedule.from_fault_config(config, 4)
        kinds = [ev.kind for ev in schedule.events]
        assert kinds == ["slowdown", "restore"]
        assert schedule.events[1].step == 8

    def test_node_outage_covers_every_gpu(self):
        schedule = ElasticitySchedule.node_outage(
            (4, 5, 6, 7), fail_step=10, recovery_steps=5
        )
        assert len(schedule) == 8
        assert len(schedule.events_at(10)) == 4
        assert len(schedule.events_at(15)) == 4


# ----------------------------------------------------------------------
# Assignment re-sharding
# ----------------------------------------------------------------------
class TestRedistributeAssignment:
    def test_noop_when_all_alive(self):
        assignment = np.arange(12).reshape(3, 4)
        out = redistribute_assignment(assignment, np.ones(4, dtype=bool))
        assert out is assignment

    def test_conserves_tokens_and_zeroes_dead_columns(self):
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, 100, size=(6, 8))
        live = np.ones(8, dtype=bool)
        live[[2, 5]] = False
        out = redistribute_assignment(assignment, live)
        assert out.sum() == assignment.sum()
        assert (out[:, [2, 5]] == 0).all()
        assert (out.sum(axis=1) == assignment.sum(axis=1)).all()

    def test_even_spread_with_deterministic_remainder(self):
        assignment = np.array([[0, 0, 0, 7]])
        live = np.array([True, True, True, False])
        out = redistribute_assignment(assignment, live)
        assert out.tolist() == [[3, 2, 2, 0]]

    def test_all_dead_raises(self):
        with pytest.raises(ElasticityError):
            redistribute_assignment(np.ones((2, 2)), np.zeros(2, dtype=bool))


# ----------------------------------------------------------------------
# Static heterogeneity
# ----------------------------------------------------------------------
class TestHeterogeneousCluster:
    def test_scale_length_validated(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_nodes=1, gpus_per_node=4, compute_scales=(1.0, 0.5))

    def test_scales_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(
                num_nodes=1, gpus_per_node=2, bandwidth_scales=(1.0, 0.0)
            )

    def test_device_compute_scale_applies(self):
        config = ClusterConfig(
            num_nodes=1, gpus_per_node=4, compute_scales=(1.0, 1.0, 0.5, 1.0)
        )
        topology = ClusterTopology(config)
        fast = topology.device(0).tokens_per_second(SMALL_MODEL)
        slow = topology.device(2).tokens_per_second(SMALL_MODEL)
        assert slow == pytest.approx(0.5 * fast)

    def test_bandwidth_bottlenecked_by_slower_endpoint(self):
        config = ClusterConfig(
            num_nodes=1, gpus_per_node=4, bandwidth_scales=(1.0, 0.5, 1.0, 1.0)
        )
        topology = ClusterTopology(config)
        nominal = ClusterTopology(
            ClusterConfig(num_nodes=1, gpus_per_node=4)
        ).bandwidth(0, 2)
        assert topology.bandwidth(0, 1) == pytest.approx(0.5 * nominal)
        assert topology.bandwidth(1, 0) == pytest.approx(0.5 * nominal)
        assert topology.bandwidth(0, 2) == pytest.approx(nominal)
        # Loop-back copies are device-local and unaffected.
        assert topology.bandwidth(1, 1) == ClusterTopology.LOCAL_COPY_BANDWIDTH

    def test_profiler_measures_heterogeneous_tps(self):
        config = ClusterConfig(
            num_nodes=1, gpus_per_node=4, compute_scales=(1.0, 0.25, 1.0, 1.0)
        )
        profile = Profiler(ClusterTopology(config)).exact_profile(SMALL_MODEL)
        assert profile.tps[1] == pytest.approx(0.25 * profile.tps[0])


# ----------------------------------------------------------------------
# Elastic cost-model pricing
# ----------------------------------------------------------------------
class TestElasticCostModel:
    def _cost_model(self):
        topology = ClusterTopology(ClusterConfig(num_nodes=1, gpus_per_node=4))
        profile = Profiler(topology).exact_profile(SMALL_MODEL)
        state = ClusterState(4)
        return MoECostModel(profile, SMALL_MODEL, cluster_state=state), state

    def test_compute_prices_against_current_speed(self):
        cost_model, state = self._cost_model()
        before = cost_model.compute_time(1000, 1)
        state.set_speed(1, 0.5)
        assert cost_model.compute_time(1000, 1) == pytest.approx(2 * before)

    def test_live_mask_tracks_failures(self):
        cost_model, state = self._cost_model()
        assert cost_model.live_mask().all()
        state.fail(3)
        assert cost_model.live_mask().tolist() == [True, True, True, False]

    def test_memo_invalidated_by_state_changes(self):
        cost_model, state = self._cost_model()
        memo = MemoizedStepCost(cost_model)
        placement = Placement.balanced(4, 4, 2)
        assignment = np.full((4, 4), 64)
        before = memo.step_time(assignment, placement)
        assert memo.step_time(assignment, placement) == before
        assert memo.hits == 1
        state.set_speed(0, 0.5)  # straggler: the same query must re-price
        after = memo.step_time(assignment, placement)
        assert memo.hits == 1 and memo.misses == 2
        assert after > before


# ----------------------------------------------------------------------
# Workload spikes
# ----------------------------------------------------------------------
class TestWorkloadSpikes:
    def test_spike_config_validated(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(spike_period=0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(spike_magnitude=0.0)

    def test_spiked_trace_is_deterministic_and_conserving(self):
        config = WorkloadConfig(
            tokens_per_step=4096, num_steps=20, spike_period=3,
            spike_magnitude=8.0, seed=5,
        )
        a = DriftingRoutingGenerator(8, 4, config).generate()
        b = DriftingRoutingGenerator(8, 4, config).generate()
        assert a == b
        assert (a.tokens_per_step() == 4096).all()

    def test_spikes_change_the_trace(self):
        base = WorkloadConfig(tokens_per_step=4096, num_steps=20, seed=5)
        plain = DriftingRoutingGenerator(8, 4, base).generate()
        spiked = DriftingRoutingGenerator(
            8, 4, base.replace(spike_period=2, spike_magnitude=16.0)
        ).generate()
        assert plain != spiked
