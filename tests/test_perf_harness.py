"""The scheduling-overhead perf harness (repro.bench.perf)."""

import json

from repro.bench.perf import (
    faults_overhead_benchmark,
    pipeline_overhead_benchmark,
    planner_benchmark,
    write_report,
)


def test_planner_benchmark_reports_equivalence_and_counters():
    result = planner_benchmark(
        num_experts=8, num_gpus=4, num_steps=6, tokens_per_gpu=8192
    )
    assert result["decisions_match"]
    assert result["fallbacks"] == 0
    assert result["delta_rounds_per_sec"] > 0
    assert result["reference_rounds_per_sec"] > 0
    assert result["rounds"] == 12
    # The memo's hit/miss accounting is surfaced for bench reporting.
    assert result["memo"]["misses"] > 0
    assert set(result["delta"]) >= {"rebases", "evaluations", "fallbacks"}


def test_pipeline_overhead_benchmark_simulations_match():
    result = pipeline_overhead_benchmark(
        num_moe_layers=2, num_gpus=4, num_experts=8, num_steps=6,
        tokens_per_gpu=8192,
    )
    assert result["simulated_results_match"]
    assert result["fallbacks"] == 0
    assert result["delta_steps_per_sec"] > 0


def test_faults_overhead_benchmark_simulations_match():
    result = faults_overhead_benchmark(
        num_moe_layers=2, num_gpus=8, num_experts=16, num_steps=20
    )
    assert result["simulated_results_match"]
    assert result["flexmoe_actions"] > 0
    # Elasticity events apply before the schedulers run, so even the
    # faults scenario must never stale the delta base mid-search.
    assert result["fallbacks"] == 0


def test_write_report_round_trips(tmp_path):
    report = {"suite": "step_overhead", "ok": True, "speedup": 5.0}
    path = write_report(report, tmp_path / "BENCH_step_overhead.json")
    assert json.loads(path.read_text()) == report
