"""The scheduling-overhead perf harness (repro.bench.perf)."""

import json

from repro.bench.perf import (
    faults_overhead_benchmark,
    pipeline_overhead_benchmark,
    planner_benchmark,
    write_report,
)


def test_planner_benchmark_reports_equivalence_and_counters():
    result = planner_benchmark(
        num_experts=8, num_gpus=4, num_steps=6, tokens_per_gpu=8192
    )
    assert result["decisions_match"]
    assert result["fallbacks"] == 0
    assert result["delta_rounds_per_sec"] > 0
    assert result["reference_rounds_per_sec"] > 0
    assert result["rounds"] == 12
    # The memo's hit/miss accounting is surfaced for bench reporting.
    assert result["memo"]["misses"] > 0
    assert set(result["delta"]) >= {"rebases", "evaluations", "fallbacks"}
    # The untimed allocation pass reports the replay's memory columns.
    allocation = result["allocation"]
    assert allocation["tracemalloc_peak_kb"] > 0
    assert allocation["tracemalloc_peak_kb"] >= (
        allocation["tracemalloc_current_kb"]
    )
    assert allocation["live_blocks_per_step"] > 0
    assert allocation["peak_rss_kb"] > 0


def test_pipeline_overhead_benchmark_simulations_match():
    result = pipeline_overhead_benchmark(
        num_moe_layers=2, num_gpus=4, num_experts=8, num_steps=6,
        tokens_per_gpu=8192,
    )
    assert result["simulated_results_match"]
    assert result["fallbacks"] == 0
    assert result["delta_steps_per_sec"] > 0


def test_faults_overhead_benchmark_simulations_match():
    result = faults_overhead_benchmark(
        num_moe_layers=2, num_gpus=8, num_experts=16, num_steps=20
    )
    assert result["simulated_results_match"]
    assert result["flexmoe_actions"] > 0
    # Elasticity events apply before the schedulers run, so even the
    # faults scenario must never stale the delta base mid-search.
    assert result["fallbacks"] == 0


def test_write_report_round_trips(tmp_path):
    report = {"suite": "step_overhead", "ok": True, "speedup": 5.0}
    path = write_report(report, tmp_path / "BENCH_step_overhead.json")
    assert json.loads(path.read_text()) == report


def test_planner_benchmark_memo_hit_rate_positive():
    """Regression for the dead memo cache: the planner path must show
    genuine hits (the Migration Planner's reference baseline re-prices
    the configuration the Policy Maker just scored through the SHARED
    memo), attributed to the migration phase."""
    result = planner_benchmark(
        num_experts=8, num_gpus=4, num_steps=6, tokens_per_gpu=8192
    )
    memo = result["memo"]
    assert memo["hits"] > 0
    assert memo["hit_rate"] > 0
    assert memo["phases"]["migration"]["hits"] > 0
    # And the shared memo changed no decision.
    assert result["decisions_match"]


def test_serving_events_benchmark_identities_and_floor():
    from repro.bench.perf import (
        SERVING_EVENTS_PER_SEC_FLOOR,
        serving_events_benchmark,
    )

    result = serving_events_benchmark(
        num_gpus=8, num_experts=16, num_requests=400,
        identity_requests=48, repeats=1,
    )
    # The fast stack must reproduce the reference stack byte-for-byte
    # (stub records AND the real engine's full report)...
    assert result["stub_identity"]
    assert result["simulated_results_match"]
    # ...and clear the CI throughput floor even at this tiny scale.
    assert result["events_per_sec"] >= SERVING_EVENTS_PER_SEC_FLOOR
    assert result["num_batches"] > 0
    assert result["logical_events"] == (
        result["num_requests"] + 2 * result["num_batches"]
    )


def test_kernel_events_benchmark_trace_identity_and_floor():
    from repro.bench.perf import (
        KERNEL_EVENTS_PER_SEC_FLOOR,
        kernel_events_benchmark,
    )

    result = kernel_events_benchmark(num_ticks=300, repeats=1)
    assert result["trace_identity"]
    assert result["simulated_results_match"]
    assert result["events_per_sec"] >= KERNEL_EVENTS_PER_SEC_FLOOR
    assert result["total_events"] > result["num_ticks"]
