"""Unit tests for the ground-truth step executor."""

import numpy as np
import pytest

from repro.cluster.groups import CommunicatorGroupCache
from repro.core.placement import Placement
from repro.core.router import FlexibleTokenRouter
from repro.exceptions import SimulationError
from repro.runtime.executor import StepExecutor


@pytest.fixture
def executor(topology, model_config) -> StepExecutor:
    return StepExecutor(topology, model_config, jitter=0.0, seed=0)


class TestRealOperations:
    def test_compute_linear_in_tokens(self, executor):
        assert executor.real_compute_time(2000, 0) == pytest.approx(
            2 * executor.real_compute_time(1000, 0)
        )

    def test_local_a2a_free(self, executor):
        routes = np.zeros((2, 8, 8))
        routes[0, 3, 3] = 1000
        assert executor.real_a2a_pass_time(routes) == 0.0

    def test_allreduce_time_matches_collectives(self, executor, collectives, model_config):
        group = (0, 1, 4)
        assert executor.real_allreduce_time(
            model_config.expert_bytes, group
        ) == pytest.approx(
            collectives.allreduce_time(model_config.expert_bytes, group)
        )

    def test_jitter_perturbs_but_reproducibly(self, topology, model_config):
        a = StepExecutor(topology, model_config, jitter=0.05, seed=3)
        b = StepExecutor(topology, model_config, jitter=0.05, seed=3)
        exact = StepExecutor(topology, model_config, jitter=0.0)
        ta = a.real_compute_time(10_000, 0)
        tb = b.real_compute_time(10_000, 0)
        te = exact.real_compute_time(10_000, 0)
        assert ta == tb
        assert ta != te
        assert ta == pytest.approx(te, rel=0.3)


class TestExecute:
    def test_step_composition(self, executor, placement, assignment):
        plan = FlexibleTokenRouter().route(assignment, placement)
        timing = executor.execute(plan.routes, placement)
        assert timing.step_time == pytest.approx(
            timing.a2a_time
            + timing.compute_time
            + timing.sync_time
            + timing.adjustment_blocking
        )
        assert timing.a2a_time > 0
        assert timing.compute_time > 0

    def test_no_replicas_no_sync(self, executor, model_config, topology):
        placement = Placement.expert_parallel(
            model_config.num_experts, topology.num_gpus
        )
        routes = np.zeros(
            (model_config.num_experts, topology.num_gpus, topology.num_gpus)
        )
        routes[0, 0, 0] = 100
        timing = executor.execute(routes, placement)
        assert timing.sync_time == 0.0

    def test_replicated_placement_pays_sync(self, executor, placement):
        routes = np.zeros((8, 8, 8))
        timing = executor.execute(routes, placement)
        assert timing.sync_time > 0  # balanced(8, 8, 2) replicates experts

    def test_adjustment_blocking_added(self, executor, placement, assignment):
        plan = FlexibleTokenRouter().route(assignment, placement)
        base = executor.execute(plan.routes, placement)
        blocked = executor.execute(
            plan.routes, placement, adjustment_blocking=0.5
        )
        assert blocked.step_time == pytest.approx(base.step_time + 0.5)

    def test_group_cache_charged_on_new_groups(self, topology, model_config, placement):
        cache = CommunicatorGroupCache(capacity=16, creation_cost=0.25)
        executor = StepExecutor(
            topology, model_config, jitter=0.0, group_cache=cache
        )
        routes = np.zeros((8, 8, 8))
        first = executor.execute(routes, placement)
        second = executor.execute(routes, placement)
        assert first.sync_time > second.sync_time  # creations amortized
        assert cache.stats.misses > 0
        assert cache.stats.hits > 0

    def test_utilization_bounds(self, executor, placement, assignment):
        plan = FlexibleTokenRouter().route(assignment, placement)
        timing = executor.execute(plan.routes, placement)
        assert 0.0 <= timing.compute_utilization <= 1.0

    def test_validation(self, executor, placement):
        with pytest.raises(SimulationError):
            executor.execute(np.zeros((8, 8)), placement)
        with pytest.raises(SimulationError):
            executor.execute(
                np.zeros((8, 8, 8)), placement, adjustment_blocking=-1
            )
        with pytest.raises(SimulationError):
            executor.real_compute_time(-5, 0)
