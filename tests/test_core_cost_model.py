"""Unit tests for the MoE cost models (Eqs. 5, 7, 8, 9)."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.core.primitives import Expand, Migrate, Shrink
from repro.core.router import FlexibleTokenRouter
from repro.exceptions import RoutingError


class TestComputeCost:
    def test_eq7_linear_in_tokens(self, cost_model):
        t1 = cost_model.compute_time(1000, 0)
        t2 = cost_model.compute_time(2000, 0)
        assert t2 == pytest.approx(2 * t1)

    def test_zero_tokens_free(self, cost_model):
        assert cost_model.compute_time(0, 0) == 0.0

    def test_negative_rejected(self, cost_model):
        with pytest.raises(RoutingError):
            cost_model.compute_time(-1, 0)


class TestAllToAllCost:
    def test_pure_local_traffic_free(self, cost_model, placement):
        routes = np.zeros((8, 8, 8))
        for g in range(8):
            routes[0, g, g] = 1000  # all tokens stay local
        times = cost_model.all_to_all_times(routes)
        assert np.allclose(times, 0.0)

    def test_four_passes_counted(self, cost_model, model_config, exact_profile):
        routes = np.zeros((8, 8, 8))
        routes[0, 0, 1] = 1000
        times = cost_model.all_to_all_times(routes)
        expected = 4 * 1000 * model_config.token_bytes / exact_profile.link_bandwidth(0, 1)
        assert times[1] == pytest.approx(expected)

    def test_inter_node_traffic_costlier(self, cost_model):
        intra = np.zeros((8, 8, 8))
        intra[0, 0, 1] = 1000
        inter = np.zeros((8, 8, 8))
        inter[0, 0, 4] = 1000
        assert (
            cost_model.all_to_all_times(inter).max()
            > cost_model.all_to_all_times(intra).max()
        )


class TestSyncCost:
    def test_single_replica_free(self, cost_model):
        placement = Placement.expert_parallel(8, 8)
        assert np.allclose(cost_model.sync_times(placement), 0.0)

    def test_replicated_expert_charges_members(self, cost_model):
        counts = Placement.expert_parallel(8, 8).counts
        counts[0, 1] = 1  # expert 0 replicated onto gpu 1
        placement = Placement(counts, 2)
        times = cost_model.sync_times(placement)
        assert times[0] > 0
        assert times[1] > 0
        assert times[2] == 0

    def test_wider_groups_cost_more_per_gpu(self, cost_model):
        counts = Placement.expert_parallel(8, 8).counts
        counts[0, 4] = 1
        narrow = Placement(counts.copy(), 3)
        counts[0, 5] = 1
        counts[0, 6] = 1
        wide = Placement(counts, 3)
        assert (
            cost_model.sync_times(wide)[0]
            > cost_model.sync_times(narrow)[0]
        )


class TestAdjustmentCost:
    def test_shrink_free(self, cost_model):
        assert cost_model.adjustment_cost([Shrink(0, 0)]) == 0.0

    def test_intra_gpu_expand_free(self, cost_model):
        assert cost_model.adjustment_cost([Expand(0, 1, 1)]) == 0.0

    def test_inter_gpu_expand_charged(self, cost_model, model_config, exact_profile):
        cost = cost_model.adjustment_cost([Expand(0, 4, 0)])
        expected = model_config.expert_state_bytes / exact_profile.link_bandwidth(0, 4)
        assert cost == pytest.approx(expected)

    def test_migrate_charged_both_ways_overlapped(self, cost_model, model_config, exact_profile):
        cost = cost_model.adjustment_cost([Migrate(0, 0, 1, 4)])
        one_way = model_config.expert_state_bytes / exact_profile.link_bandwidth(0, 4)
        assert cost == pytest.approx(one_way)


class TestStepBreakdown:
    def test_step_time_is_max_over_gpus(self, cost_model, placement, assignment):
        plan = FlexibleTokenRouter().route(assignment, placement)
        breakdown = cost_model.step_breakdown(plan.routes, placement)
        assert breakdown.step_time == pytest.approx(
            breakdown.per_gpu_total.max()
        )

    def test_monotone_in_load(self, cost_model, placement, assignment):
        plan = FlexibleTokenRouter().route(assignment, placement)
        t1 = cost_model.step_time(plan.routes, placement)
        t2 = cost_model.step_time(plan.routes * 2, placement)
        assert t2 > t1

    def test_utilization_in_unit_interval(self, cost_model, placement, assignment):
        plan = FlexibleTokenRouter().route(assignment, placement)
        breakdown = cost_model.step_breakdown(plan.routes, placement)
        assert 0.0 <= breakdown.compute_utilization <= 1.0

    def test_expert_count_mismatch_rejected(self, cost_model, placement):
        with pytest.raises(RoutingError):
            cost_model.step_breakdown(np.zeros((3, 8, 8)), placement)
