"""CLI smoke tests: python -m repro run|bench|compare|faults|perf."""

import json

import pytest

from repro.cli import build_parser, main

RUN_ARGS = [
    "run",
    "--layers", "2",
    "--experts", "8",
    "--gpus", "4",
    "--steps", "4",
    "--tokens-per-gpu", "4096",
    "--d-model", "256",
    "--d-ffn", "1024",
    "--warmup", "1",
]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_json(capsys):
    assert main(RUN_ARGS + ["--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["mean_step_time"] > 0
    assert payload["moe_layers"] == 2.0
    assert "mean_overlap_savings" in payload
    assert "distinct_final_placements" in payload


def test_run_human_readable(capsys):
    assert main(RUN_ARGS) == 0
    out = capsys.readouterr().out
    assert "step-time breakdown" in out
    assert "distinct per-layer placements" in out


def test_run_no_overlap_flag(capsys):
    assert main(RUN_ARGS + ["--no-overlap", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["mean_a2a_hidden"] == 0.0


def test_bench_json(capsys):
    args = ["bench", "--experts", "8", "--gpus", "4", "--repeats", "3", "--json"]
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["vectorized_ms"] > 0
    assert payload["reference_ms"] > 0
    assert payload["speedup"] > 0


def test_compare_json(capsys):
    args = [
        "compare", "--gpus", "4", "--experts", "8", "--steps", "4", "--json",
    ]
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "FlexMoE" in payload
    assert payload["FlexMoE"]["mean_step_time"] > 0


def test_compare_unknown_model_errors(capsys):
    assert main(["compare", "--model", "no-such-model"]) == 2
    assert "error:" in capsys.readouterr().err


FAULTS_ARGS = [
    "faults",
    "--layers", "1",
    "--experts", "8",
    "--gpus", "4",
    "--steps", "16",
    "--tokens-per-gpu", "4096",
    "--fail-step", "4",
    "--recover-after", "5",
    "--stragglers", "1",
    "--straggler-step", "2",
]


def test_faults_human_readable(capsys):
    assert main(FAULTS_ARGS) == 0
    out = capsys.readouterr().out
    assert "events:" in out
    assert "fail" in out and "recover" in out and "slowdown" in out
    assert "FlexMoE" in out and "Static" in out


def test_faults_json(capsys):
    assert main(FAULTS_ARGS + ["--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["flexmoe"]["final"] > 0
    assert payload["baseline"]["final"] > 0
    assert payload["flexmoe"]["rehomed"] == 1.0
    assert {e["kind"] for e in payload["events"]} == {
        "fail", "recover", "slowdown"
    }


def test_faults_smoke_passes(capsys):
    assert main(["faults", "--smoke", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["first_failure_step"] == 10


def test_perf_smoke_passes_and_writes_report(capsys, tmp_path):
    out = tmp_path / "BENCH_step_overhead.json"
    assert main(["perf", "--smoke", "--output", str(out), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["total_fallbacks"] == 0
    assert payload["planner"]["decisions_match"] is True
    assert payload["pipeline"]["simulated_results_match"] is True
    assert payload["faults"]["simulated_results_match"] is True
    written = json.loads(out.read_text())
    assert written["suite"] == "step_overhead"
    assert written["smoke"] is True


def test_perf_unwritable_output_fails_fast(capsys, tmp_path):
    target = tmp_path / "missing-dir" / "report.json"
    assert main(["perf", "--smoke", "--output", str(target)]) == 2
    err = capsys.readouterr().err
    assert "error: cannot write report" in err


def test_perf_human_readable(capsys, tmp_path):
    out = tmp_path / "BENCH_step_overhead.json"
    assert main(["perf", "--smoke", "--output", str(out)]) == 0
    text = capsys.readouterr().out
    assert "planner" in text and "rounds/s" in text
    assert "decisions identical" in text
    assert "fallbacks to full recompute: 0" in text
    assert "perf: OK" in text


def test_churn_smoke_passes_and_writes_report(capsys, tmp_path):
    out = tmp_path / "BENCH_autoscale_churn.json"
    assert main(["churn", "--smoke", "--output", str(out), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["suite"] == "autoscale_churn"
    assert set(payload["rows"]) == {
        "spot", "outage", "heterogeneous", "multiday"
    }
    for row in payload["rows"].values():
        assert row["attainment_gain"] > 0
    assert payload["degradation"]["ok"] is True
    written = json.loads(out.read_text())
    assert written["smoke"] is True
    assert written["regression"] is False


def test_churn_human_readable(capsys, tmp_path):
    out = tmp_path / "BENCH_autoscale_churn.json"
    assert main(["churn", "--smoke", "--output", str(out)]) == 0
    text = capsys.readouterr().out
    assert "autoscale churn" in text
    assert "cost-weighted goodput" in text
    assert "degradation pair" in text
    assert "churn smoke: OK" in text


def test_churn_unwritable_output_fails_fast(capsys, tmp_path):
    target = tmp_path / "missing-dir" / "report.json"
    assert main(["churn", "--smoke", "--output", str(target)]) == 2
    err = capsys.readouterr().err
    assert "error: cannot write report" in err
