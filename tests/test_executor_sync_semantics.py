"""Focused tests for the executor's AllReduce phase semantics."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.runtime.executor import StepExecutor


@pytest.fixture
def exact_executor(topology, model_config) -> StepExecutor:
    return StepExecutor(topology, model_config, jitter=0.0, seed=0)


def placement_with_groups(groups: dict[int, tuple[int, ...]]) -> Placement:
    """8-expert placement over 8 GPUs with the given replica groups."""
    counts = Placement.expert_parallel(8, 8).counts
    for expert, gpus in groups.items():
        counts[expert, :] = 0
        for gpu in gpus:
            counts[expert, gpu] = 1
    slots = int(counts.sum(axis=0).max())
    return Placement(counts, slots)


class TestSyncChaining:
    def test_shared_member_serializes_groups(
        self, exact_executor, collectives, model_config
    ):
        """A GPU in two replica groups issues both AllReduces in sequence."""
        placement = placement_with_groups({0: (0, 1), 1: (0, 2)})
        routes = np.zeros((8, 8, 8))
        timing = exact_executor.execute(routes, placement)
        t_a = collectives.allreduce_time(model_config.expert_bytes, (0, 1))
        t_b = collectives.allreduce_time(model_config.expert_bytes, (0, 2))
        assert timing.sync_time == pytest.approx(t_a + t_b)

    def test_disjoint_groups_overlap(
        self, exact_executor, collectives, model_config
    ):
        """Groups with no shared GPU run concurrently: phase = slowest."""
        placement = placement_with_groups({0: (0, 1), 1: (2, 3)})
        routes = np.zeros((8, 8, 8))
        timing = exact_executor.execute(routes, placement)
        t_a = collectives.allreduce_time(model_config.expert_bytes, (0, 1))
        t_b = collectives.allreduce_time(model_config.expert_bytes, (2, 3))
        assert timing.sync_time == pytest.approx(max(t_a, t_b))

    def test_cross_node_group_dominates(
        self, exact_executor, collectives, model_config
    ):
        placement = placement_with_groups({0: (0, 1), 1: (2, 4)})
        routes = np.zeros((8, 8, 8))
        timing = exact_executor.execute(routes, placement)
        t_inter = collectives.allreduce_time(
            model_config.expert_bytes, (2, 4)
        )
        assert timing.sync_time == pytest.approx(t_inter)

    def test_same_group_shared_across_experts_reuses_time(
        self, exact_executor, collectives, model_config
    ):
        """Two experts with identical groups still pay two AllReduces."""
        placement = placement_with_groups({0: (0, 1), 1: (0, 1)})
        routes = np.zeros((8, 8, 8))
        timing = exact_executor.execute(routes, placement)
        t_one = collectives.allreduce_time(model_config.expert_bytes, (0, 1))
        assert timing.sync_time == pytest.approx(2 * t_one)
