"""Unit tests for the Migrate planner."""

import numpy as np
import pytest

from repro.core.migration import MigrationPlanner
from repro.core.placement import Placement
from repro.core.primitives import Migrate
from repro.exceptions import SchedulingError


@pytest.fixture
def planner(cost_model, topology) -> MigrationPlanner:
    return MigrationPlanner(cost_model, topology, max_moves=3)


def scattered_placement() -> Placement:
    """Expert 0 replicated across both nodes; other experts single."""
    counts = np.zeros((8, 8), dtype=np.int64)
    for e in range(8):
        counts[e, e] = 1
    counts[0, 4] = 1  # cross-node replica of expert 0
    return Placement(counts, 2)


class TestPlanner:
    def test_no_moves_for_single_replica_placement(self, planner):
        placement = Placement.expert_parallel(8, 8)
        assignment = np.full((8, 8), 1000, dtype=np.int64)
        assert planner.plan(assignment, placement) == []

    def test_moves_strictly_improve_modelled_time(self, planner):
        placement = scattered_placement()
        assignment = np.full((8, 8), 1000, dtype=np.int64)
        assignment[0] = 40_000
        before = planner.step_time(assignment, placement)
        moves = planner.plan(assignment, placement)
        trial = placement.copy()
        for move in moves:
            move.apply(trial)
        after = planner.step_time(assignment, trial)
        if moves:
            assert after < before

    def test_returns_only_migrates(self, planner):
        placement = scattered_placement()
        assignment = np.full((8, 8), 1000, dtype=np.int64)
        assignment[0] = 40_000
        for move in planner.plan(assignment, placement):
            assert isinstance(move, Migrate)

    def test_respects_max_moves(self, cost_model, topology):
        planner = MigrationPlanner(cost_model, topology, max_moves=1)
        placement = scattered_placement()
        assignment = np.full((8, 8), 1000, dtype=np.int64)
        assignment[0] = 40_000
        assert len(planner.plan(assignment, placement)) <= 1

    def test_does_not_mutate_input_placement(self, planner):
        placement = scattered_placement()
        signature = placement.signature()
        assignment = np.full((8, 8), 1000, dtype=np.int64)
        assignment[0] = 40_000
        planner.plan(assignment, placement)
        assert placement.signature() == signature

    def test_zero_moves_allowed(self, cost_model, topology):
        planner = MigrationPlanner(cost_model, topology, max_moves=0)
        placement = scattered_placement()
        assignment = np.full((8, 8), 1000, dtype=np.int64)
        assert planner.plan(assignment, placement) == []

    def test_validation(self, cost_model, topology):
        with pytest.raises(SchedulingError):
            MigrationPlanner(cost_model, topology, max_moves=-1)
        with pytest.raises(SchedulingError):
            MigrationPlanner(cost_model, topology, max_candidates=0)

    def test_total_sync_time_helper(self, planner):
        single = Placement.expert_parallel(8, 8)
        assert planner.total_sync_time(single) == 0.0
        assert planner.total_sync_time(scattered_placement()) > 0.0
