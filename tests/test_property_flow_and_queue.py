"""Property-based tests: flow-control and adjustment-queue invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.collectives import CollectiveCostModel
from repro.cluster.topology import ClusterTopology
from repro.config import ClusterConfig, MoEModelConfig
from repro.core.flow_control import GateFlowController
from repro.core.placement import Placement
from repro.core.primitives import Expand, Migrate, Shrink
from repro.runtime.adjustment import AdjustmentQueue

TOPOLOGY = ClusterTopology(ClusterConfig(num_nodes=2, gpus_per_node=4))
COLLECTIVES = CollectiveCostModel(TOPOLOGY)
MODEL = MoEModelConfig("prop-q", 2, 128, 512, 8)


def assignments(num_experts=8, num_gpus=8, max_tokens=5000):
    return st.lists(
        st.integers(0, max_tokens),
        min_size=num_experts * num_gpus,
        max_size=num_experts * num_gpus,
    ).map(
        lambda f: np.array(f, dtype=np.int64).reshape(num_experts, num_gpus)
    )


@settings(max_examples=60, deadline=None)
@given(
    frames=st.lists(assignments(), min_size=1, max_size=6),
    watermark=st.floats(1.01, 5.0),
)
def test_flow_control_never_loses_tokens(frames, watermark):
    """Across any step sequence: admitted + backlog == assigned."""
    controller = GateFlowController(watermark_factor=watermark)
    placement = Placement.balanced(8, 8, 2)
    total_in = 0
    total_out = 0
    for frame in frames:
        admitted = controller.admit(frame, placement)
        assert (admitted >= 0).all()
        total_in += int(frame.sum())
        total_out += int(admitted.sum())
    assert total_out + controller.backlog_tokens == total_in


@settings(max_examples=60, deadline=None)
@given(assignment=assignments(), watermark=st.floats(1.01, 3.0))
def test_flow_control_per_gpu_origins_preserved(assignment, watermark):
    """Deferral removes tokens per (expert, gpu) cell, never shifts them."""
    controller = GateFlowController(watermark_factor=watermark)
    placement = Placement.balanced(8, 8, 2)
    admitted = controller.admit(assignment, placement)
    assert (admitted <= assignment).all()


def actions_strategy():
    expands = st.builds(
        Expand,
        expert=st.integers(0, 7),
        gpu=st.integers(0, 7),
        source_gpu=st.integers(0, 7),
    )
    shrinks = st.builds(
        Shrink, expert=st.integers(0, 7), gpu=st.integers(0, 7)
    )
    migrates = st.builds(
        Migrate,
        expert_a=st.integers(0, 7),
        gpu_a=st.integers(0, 3),
        expert_b=st.integers(0, 7),
        gpu_b=st.integers(4, 7),
    )
    return st.lists(st.one_of(expands, shrinks, migrates), max_size=12)


@settings(max_examples=60, deadline=None)
@given(actions=actions_strategy(), window=st.floats(0, 1.0))
def test_queue_blocking_never_exceeds_transfer(actions, window):
    queue = AdjustmentQueue(MODEL, COLLECTIVES)
    queue.enqueue(actions)
    report = queue.drain(overlap_window=window, best_effort=True)
    assert 0 <= report.blocking_time <= report.transfer_time + 1e-12
    assert report.executed == len(actions)
    assert queue.pending_count == 0


@settings(max_examples=60, deadline=None)
@given(actions=actions_strategy())
def test_queue_merging_never_slower(actions):
    """Merging + parallel waves never exceed the naive serial schedule."""
    merged = AdjustmentQueue(MODEL, COLLECTIVES, merge=True, parallelize=True)
    serial = AdjustmentQueue(MODEL, COLLECTIVES, merge=False, parallelize=False)
    merged.enqueue(list(actions))
    serial.enqueue(list(actions))
    t_merged = merged.drain(overlap_window=0.0).transfer_time
    t_serial = serial.drain(overlap_window=0.0).transfer_time
    assert t_merged <= t_serial + 1e-9


@settings(max_examples=60, deadline=None)
@given(actions=actions_strategy())
def test_queue_synchronous_blocking_equals_transfer(actions):
    queue = AdjustmentQueue(MODEL, COLLECTIVES)
    queue.enqueue(actions)
    report = queue.drain(overlap_window=123.0, best_effort=False)
    assert report.blocking_time == pytest.approx(report.transfer_time)
