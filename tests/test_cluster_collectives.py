"""Unit tests for collective communication cost models."""

import pytest

from repro.exceptions import TopologyError


class TestP2P:
    def test_zero_bytes_free(self, collectives):
        assert collectives.p2p_time(0, 0, 4) == 0.0

    def test_local_copy_free(self, collectives):
        assert collectives.p2p_time(1e9, 2, 2) == 0.0

    def test_inter_node_slower_than_intra(self, collectives):
        intra = collectives.p2p_time(1e8, 0, 1)
        inter = collectives.p2p_time(1e8, 0, 4)
        assert inter > intra

    def test_monotone_in_bytes(self, collectives):
        assert collectives.p2p_time(2e8, 0, 4) > collectives.p2p_time(1e8, 0, 4)

    def test_negative_bytes_rejected(self, collectives):
        with pytest.raises(TopologyError):
            collectives.p2p_time(-1, 0, 1)


class TestAllReduce:
    def test_single_member_free(self, collectives):
        assert collectives.allreduce_time(1e9, [3]) == 0.0

    def test_grows_with_bytes(self, collectives):
        small = collectives.allreduce_time(1e7, [0, 1, 4])
        large = collectives.allreduce_time(1e8, [0, 1, 4])
        assert large > small

    def test_cross_node_group_slower(self, collectives):
        intra = collectives.allreduce_time(1e8, [0, 1, 2])
        inter = collectives.allreduce_time(1e8, [0, 1, 4])
        assert inter > intra

    def test_ring_scaling_factor(self, collectives, cluster_config):
        """time ~= 2(n-1)/n * bytes / bottleneck for large payloads."""
        nbytes = 1e9
        time = collectives.allreduce_time(nbytes, [0, 1])
        expected = 2 * (1 / 2) * nbytes / cluster_config.intra_node_bandwidth
        assert time == pytest.approx(expected, rel=0.01)

    def test_duplicate_members_deduped(self, collectives):
        a = collectives.allreduce_time(1e8, [0, 1, 1, 4])
        b = collectives.allreduce_time(1e8, [0, 1, 4])
        assert a == b

    def test_empty_group_rejected(self, collectives):
        with pytest.raises(TopologyError):
            collectives.allreduce_time(1e8, [])

    def test_bps_singleton_is_local(self, collectives, topology):
        assert collectives.allreduce_bps([2]) == topology.LOCAL_COPY_BANDWIDTH

    def test_bps_larger_groups_slower(self, collectives):
        pair = collectives.allreduce_bps([0, 1])
        eight = collectives.allreduce_bps(list(range(8)))
        assert eight < pair


class TestBroadcast:
    def test_root_only_free(self, collectives):
        assert collectives.broadcast_time(1e8, 0, [0]) == 0.0

    def test_pipelined_cost_near_bottleneck(self, collectives, cluster_config):
        nbytes = 1e9
        time = collectives.broadcast_time(nbytes, 0, list(range(8)))
        assert time == pytest.approx(
            nbytes / cluster_config.inter_node_bandwidth, rel=0.01
        )

    def test_negative_bytes_rejected(self, collectives):
        with pytest.raises(TopologyError):
            collectives.broadcast_time(-5, 0, [0, 1])
