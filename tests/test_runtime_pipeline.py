"""Tests for the multi-layer pipelined engine (runtime/pipeline.py)."""

import numpy as np
import pytest

from repro.baselines import FlexMoESystem
from repro.baselines.base import build_context
from repro.config import (
    ClusterConfig,
    MoEModelConfig,
    SchedulerConfig,
    WorkloadConfig,
)
from repro.exceptions import SimulationError
from repro.runtime.executor import PipelinedStepExecutor
from repro.runtime.pipeline import MultiLayerFlexMoEEngine, build_engine
from repro.training.loop import simulate_pipeline
from repro.workload.synthetic import make_multilayer_trace, make_trace

MODEL = MoEModelConfig("pipe", num_layers=8, d_model=256, d_ffn=1024, num_experts=8)
CLUSTER = ClusterConfig(num_nodes=1, gpus_per_node=4)


def small_engine(**overrides) -> MultiLayerFlexMoEEngine:
    kwargs = dict(cluster=CLUSTER, model=MODEL, seed=0)
    kwargs.update(overrides)
    return build_engine(**kwargs)


def small_trace(num_layers: int, num_steps: int = 8, seed: int = 0):
    return make_multilayer_trace(
        num_layers,
        MODEL.num_experts,
        CLUSTER.num_gpus,
        WorkloadConfig(tokens_per_step=65_536, num_steps=num_steps, seed=seed),
    )


class TestSingleLayerReduction:
    """num_moe_layers=1 without dense modelling is the seed engine."""

    def test_matches_flexmoe_system_exactly(self):
        model = MODEL.replace(num_layers=2)  # one MoE layer
        trace = make_trace(
            MODEL.num_experts,
            CLUSTER.num_gpus,
            WorkloadConfig(tokens_per_step=65_536, num_steps=8, seed=2),
        )

        ctx = build_context(CLUSTER, model, seed=7)
        system = FlexMoESystem(ctx)
        single = [system.step(trace.step(t), t).step_time for t in range(8)]

        ctx2 = build_context(CLUSTER, model, seed=7)
        engine = MultiLayerFlexMoEEngine(
            executor=ctx2.executor,
            profile=ctx2.profile,
            collectives=ctx2.collectives,
            num_moe_layers=1,
            model_dense_compute=False,
        )
        multi = [engine.step(trace.step(t)[None], t).step_time for t in range(8)]
        np.testing.assert_allclose(multi, single, rtol=0, atol=0)

    def test_single_layer_timing_reduces_to_step_executor(self):
        ctx = build_context(CLUSTER, MODEL, seed=1)
        pipe = PipelinedStepExecutor(
            ctx.executor, num_moe_layers=1, model_dense_compute=False
        )
        routes = np.zeros((8, 4, 4), dtype=np.int64)
        routes[0, 0, 0] = 1000
        timing = pipe.execute([routes], [_balanced_placement()])
        layer = timing.layer_timings[0]
        assert timing.step_time == pytest.approx(layer.step_time)
        assert timing.dense_time == 0.0
        assert timing.hidden_a2a == 0.0


def _balanced_placement():
    from repro.core.placement import Placement

    return Placement.balanced(8, 4, 4)


class TestOverlapModel:
    def test_overlap_never_increases_step_time(self):
        trace = small_trace(4, num_steps=6)
        overlapped = simulate_pipeline(small_engine(), trace)
        sequential = simulate_pipeline(
            small_engine(overlap_efficiency=0.0), trace
        )
        # Same substrate seeds, same trace: overlap only hides A2A.
        assert overlapped.mean_step_time <= sequential.mean_step_time

    def test_hidden_a2a_bounded_by_total(self):
        run = simulate_pipeline(small_engine(), small_trace(4, num_steps=6))
        for result in run.results:
            assert 0.0 <= result.timing.hidden_a2a <= result.timing.a2a_time
            assert result.timing.exposed_a2a >= 0.0

    def test_breakdown_sums_to_step_time(self):
        run = simulate_pipeline(small_engine(), small_trace(4, num_steps=6))
        for result in run.results:
            b = result.timing.breakdown()
            total = (
                b["dense_compute"]
                + b["expert_compute"]
                + b["a2a_exposed"]
                + b["sync"]
                + b["adjustment_blocking"]
            )
            assert b["step_time"] == pytest.approx(total)

    def test_dense_modelling_adds_time(self):
        trace = small_trace(4, num_steps=6)
        with_dense = simulate_pipeline(small_engine(), trace)
        without = simulate_pipeline(
            small_engine(model_dense_compute=False), trace
        )
        assert with_dense.mean_step_time > without.mean_step_time


class TestPerLayerDivergence:
    def test_skewed_layers_diverge(self):
        engine = small_engine()
        trace = make_multilayer_trace(
            4,
            MODEL.num_experts,
            CLUSTER.num_gpus,
            WorkloadConfig(
                tokens_per_step=65_536, num_steps=15, skew=1.5, seed=3
            ),
        )
        run = simulate_pipeline(engine, trace)
        # Each layer's hot experts differ, so the schedulers must have
        # walked the placements apart.
        assert run.distinct_final_placements >= 2
        assert engine.distinct_placements() == run.distinct_final_placements

    def test_per_layer_loads_reported(self):
        run = simulate_pipeline(small_engine(), small_trace(4, num_steps=4))
        for result in run.results:
            assert result.layer_gpu_loads.shape == (4, CLUSTER.num_gpus)
            assert result.layer_locality.shape == (4,)
            assert np.array_equal(
                result.gpu_loads, result.layer_gpu_loads.sum(axis=0)
            )


class TestEngineSemantics:
    def test_token_efficiency_is_one(self):
        run = simulate_pipeline(small_engine(), small_trace(4, num_steps=4))
        assert run.mean_token_efficiency == 1.0

    def test_placements_stay_valid(self):
        engine = small_engine()
        trace = small_trace(4, num_steps=10, seed=5)
        simulate_pipeline(engine, trace)
        for layer in engine.layers:
            layer.active_placement.validate()
            layer.target_placement.validate()

    def test_best_effort_off_blocks_steps(self):
        config = SchedulerConfig(best_effort=False)
        engine = small_engine(scheduler_config=config)
        trace = make_multilayer_trace(
            4,
            MODEL.num_experts,
            CLUSTER.num_gpus,
            WorkloadConfig(
                tokens_per_step=65_536, num_steps=10, skew=1.5, seed=1
            ),
        )
        run = simulate_pipeline(engine, trace)
        blocking = sum(r.timing.adjustment_blocking for r in run.results)
        actions = sum(r.scheduling_actions for r in run.results)
        assert actions > 0
        assert blocking > 0.0

    def test_layer_count_mismatch_rejected(self):
        engine = small_engine()
        with pytest.raises(SimulationError):
            simulate_pipeline(engine, small_trace(2))

    def test_bad_assignment_shape_rejected(self):
        engine = small_engine()
        with pytest.raises(SimulationError):
            engine.step(np.zeros((2, 8, 4), dtype=np.int64), 0)

    def test_warmup_bounds(self):
        engine = small_engine()
        with pytest.raises(SimulationError):
            simulate_pipeline(engine, small_trace(4, num_steps=4), warmup=4)

    def test_summary_keys(self):
        run = simulate_pipeline(small_engine(), small_trace(4, num_steps=4))
        summary = run.summary()
        for key in (
            "mean_step_time",
            "mean_overlap_savings",
            "mean_dense_compute",
            "mean_a2a_hidden",
            "moe_layers",
        ):
            assert key in summary
        assert summary["moe_layers"] == 4.0
