"""Trace export contracts: determinism, Chrome schema, span nesting.

docs/observability.md promises three properties of the exported
artifact, each asserted here:

* a seeded run exports **byte-identical** JSON every time (sorted keys,
  simulation clock only -- no wall-clock anywhere);
* every event satisfies the **Chrome trace-event schema** subset we
  emit (ph in {X, B, E, i, M}, numeric microsecond timestamps, X events
  carry a duration, instants carry a scope);
* B/E phase spans are **properly nested** per (pid, tid) lane, so
  Perfetto renders the schedule/execute/commit split without orphans.
"""

import json

import pytest

from repro import telemetry
from repro.bench.harness import pipeline_run

VALID_PH = {"X", "B", "E", "i", "M"}


def _traced_pipeline_export() -> str:
    """One small seeded pipeline run under a fresh session -> JSON."""
    with telemetry.session(reuse=False) as tel:
        pipeline_run(
            num_moe_layers=2, num_gpus=8, num_experts=16, num_steps=8,
            tokens_per_gpu=4096, d_model=256, d_ffn=1024, warmup=2, seed=0,
        )
        return tel.export_json()


@pytest.fixture(scope="module")
def export() -> str:
    return _traced_pipeline_export()


@pytest.fixture(scope="module")
def artifact(export) -> dict:
    return json.loads(export)


def test_same_seed_exports_byte_identical_json(export):
    assert _traced_pipeline_export() == export


def test_artifact_top_level_shape(artifact):
    assert set(artifact) >= {"traceEvents", "displayTimeUnit", "metadata"}
    assert artifact["displayTimeUnit"] == "ms"
    metadata = artifact["metadata"]
    assert set(metadata) >= {"clock", "metrics", "timeline", "timeline_kinds"}
    assert set(metadata["metrics"]) == {"counters", "gauges", "histograms"}
    # The pipeline scheduler tap must have recorded trigger firings.
    assert metadata["metrics"]["counters"].get("scheduler.triggers", 0) > 0
    assert len(metadata["timeline"]) == sum(
        metadata["timeline_kinds"].values()
    )


def test_events_satisfy_chrome_schema(artifact):
    events = artifact["traceEvents"]
    assert events, "a traced run must export events"
    for event in events:
        assert event["ph"] in VALID_PH, event
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] != "M":
            assert isinstance(event["ts"], (int, float)), event
            assert event["ts"] >= 0.0
        if event["ph"] == "X":
            assert event["dur"] >= 0.0, event
        if event["ph"] == "i":
            assert event.get("s") == "t", event
    assert any(e.get("cat") == "kernel" for e in events)


def test_begin_end_spans_nest_per_lane(artifact):
    stacks: dict[tuple[int, int], list[str]] = {}
    saw_pairs = False
    for event in artifact["traceEvents"]:
        if event["ph"] not in ("B", "E"):
            continue
        stack = stacks.setdefault((event["pid"], event["tid"]), [])
        if event["ph"] == "B":
            stack.append(event["name"])
        else:
            assert stack, f"E without matching B: {event}"
            assert stack.pop() == event["name"], event
            saw_pairs = True
    assert saw_pairs, "pipeline runs must emit B/E phase spans"
    for lane, stack in stacks.items():
        assert not stack, f"unclosed spans on lane {lane}: {stack}"


def test_step_phases_nest_inside_step_span(artifact):
    # The pipeline lane's stack discipline implies more: each
    # schedule/execute/commit span opens while its step[t] is open.
    depth_names = []
    phase_names = set()
    for event in artifact["traceEvents"]:
        if event["ph"] == "B":
            if not event["name"].startswith("step["):
                # A phase span only ever opens inside its step[t] span.
                assert depth_names and depth_names[-1].startswith(
                    "step["
                ), event
                phase_names.add(event["name"])
            depth_names.append(event["name"])
        elif event["ph"] == "E":
            depth_names.pop()
    assert phase_names == {"schedule", "execute", "commit"}


def test_write_appends_trailing_newline(tmp_path):
    with telemetry.session(reuse=False) as tel:
        tel.registry.counter("x").inc()
        path = tel.write(tmp_path / "trace.json")
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text)["metadata"]["metrics"]["counters"] == {"x": 1.0}
