"""Public-API surface and determinism guarantees."""

import numpy as np
import pytest

import repro
from repro.baselines import FlexMoESystem, build_context
from repro.config import ClusterConfig, MoEModelConfig, WorkloadConfig
from repro.exceptions import (
    ConfigurationError,
    PlacementError,
    ReproError,
    RoutingError,
    SchedulingError,
    SimulationError,
    TopologyError,
)
from repro.training.loop import compare_systems
from repro.workload.synthetic import make_trace


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_exceptions_share_base(self):
        for exc in (
            ConfigurationError,
            PlacementError,
            RoutingError,
            SchedulingError,
            SimulationError,
            TopologyError,
        ):
            assert issubclass(exc, ReproError)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_baselines_exports_resolve(self):
        import repro.baselines as baselines

        for name in baselines.__all__:
            assert hasattr(baselines, name), name


class TestDeterminism:
    """Identical seeds must yield identical simulations end to end."""

    @staticmethod
    def run_once(seed: int):
        model = MoEModelConfig("det", 2, 128, 512, 8)
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=4)
        workload = WorkloadConfig(
            tokens_per_step=131_072, num_steps=6, seed=seed
        )
        cmp = compare_systems(
            model, cluster, workload,
            systems=[FlexMoESystem], seed=seed,
        )
        return cmp["FlexMoE"].step_times

    def test_same_seed_same_times(self):
        a = self.run_once(5)
        b = self.run_once(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_differs(self):
        a = self.run_once(5)
        b = self.run_once(6)
        assert not np.array_equal(a, b)

    def test_trace_generation_deterministic(self):
        cfg = WorkloadConfig(tokens_per_step=10_000, num_steps=4, seed=9)
        assert make_trace(8, 4, cfg) == make_trace(8, 4, cfg)

    def test_system_reset_reproduces_run(self):
        model = MoEModelConfig("det2", 2, 128, 512, 8)
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=4)
        context = build_context(cluster, model, seed=3)
        trace = make_trace(
            8, 4, WorkloadConfig(tokens_per_step=65_536, num_steps=5, seed=3)
        )
        system = FlexMoESystem(context)
        first = [system.step(trace.step(t), t).balance for t in range(5)]
        system.reset()
        # Placement state resets; executor jitter streams do not rewind, so
        # compare the placement-driven metric, not raw times.
        second = [system.step(trace.step(t), t).balance for t in range(5)]
        assert first == second


class TestQuickSimulation:
    def test_quickstart_entry_point(self):
        result = repro.quick_simulation(
            num_gpus=4, num_experts=8, num_steps=5
        )
        assert "FlexMoE" in result.systems
        assert result["FlexMoE"].mean_step_time > 0
