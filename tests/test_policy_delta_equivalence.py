"""Scheduling decisions are identical on the delta and reference paths.

The delta-cost search is a pure performance optimization: given the same
seeded scenario, the Policy Maker and Migrate planner must propose exactly
the same actions whether they evaluate candidates incrementally or through
the full-recompute reference evaluator. Asserted here on evolving
single-layer scenarios, the multi-layer pipelined engine and the elastic
faults scenario (failures and stragglers mid-run), following the
``ReferenceTokenRouter`` precedent of keeping the seed implementation as
the executable specification.
"""

import numpy as np
import pytest

from repro.bench.harness import faults_run
from repro.cluster.profiler import Profiler
from repro.cluster.topology import ClusterTopology
from repro.config import (
    ClusterConfig,
    FaultConfig,
    MoEModelConfig,
    SchedulerConfig,
    WorkloadConfig,
    auto_slots_per_gpu,
)
from repro.core.cost_model import MoECostModel
from repro.core.migration import MigrationPlanner
from repro.core.placement import Placement
from repro.core.policy import PolicyMaker
from repro.core.scheduler import Scheduler
from repro.runtime.pipeline import build_engine
from repro.training.loop import simulate_pipeline
from repro.workload.synthetic import (
    DriftingRoutingGenerator,
    make_multilayer_trace,
)

MODEL = MoEModelConfig("eq", num_layers=4, d_model=512, d_ffn=2048, num_experts=16)
CLUSTER = ClusterConfig(num_nodes=2, gpus_per_node=4)


def build_cost_model(noise: float = 0.02) -> tuple[MoECostModel, ClusterTopology]:
    topology = ClusterTopology(CLUSTER)
    profile = Profiler(topology, noise=noise, seed=0).profile(MODEL)
    return MoECostModel(profile, MODEL), topology


def drifting_trace(num_steps: int = 25, seed: int = 0):
    return DriftingRoutingGenerator(
        16,
        8,
        WorkloadConfig(
            tokens_per_step=16_384 * 8, num_steps=num_steps, skew=1.3,
            seed=seed,
        ),
    ).generate()


@pytest.mark.parametrize("noise", [0.0, 0.02])
def test_policy_decisions_identical_on_evolving_scenario(noise):
    """Single layer: make_plan agrees step by step as the placement evolves."""
    cost_model, _ = build_cost_model(noise)
    trace = drifting_trace()
    delta_policy = PolicyMaker(cost_model, use_delta=True)
    ref_policy = PolicyMaker(cost_model, use_delta=False)
    p_delta = Placement.balanced(16, 8, auto_slots_per_gpu(16, 8))
    p_ref = p_delta.copy()
    proposals = 0
    for step in range(trace.num_steps):
        assignment = trace.step(step)
        d = delta_policy.make_plan(assignment, p_delta)
        r = ref_policy.make_plan(assignment, p_ref)
        assert d.actions == r.actions, f"diverged at step {step}"
        assert d.adjustment_time == pytest.approx(r.adjustment_time)
        for action in d.actions:
            action.apply(p_delta)
            action.apply(p_ref)
        proposals += bool(d.actions)
    assert proposals > 0  # the scenario actually exercised the search
    assert delta_policy.delta.fallbacks == 0


def test_migration_plans_identical_on_evolving_scenario():
    cost_model, topology = build_cost_model()
    trace = drifting_trace(seed=3)
    delta_planner = MigrationPlanner(cost_model, topology, use_delta=True)
    ref_planner = MigrationPlanner(cost_model, topology, use_delta=False)
    placement = Placement.balanced(16, 8, auto_slots_per_gpu(16, 8))
    moves_seen = 0
    for step in range(trace.num_steps):
        assignment = trace.step(step)
        d_moves = delta_planner.plan(assignment, placement)
        r_moves = ref_planner.plan(assignment, placement)
        assert d_moves == r_moves, f"diverged at step {step}"
        for move in d_moves:
            move.apply(placement)
        moves_seen += len(d_moves)
    assert moves_seen > 0
    assert delta_planner.delta.fallbacks == 0


def test_scheduler_histories_identical():
    """Algorithm 1 end to end: same triggers, same rounds, same actions."""
    cost_model, topology = build_cost_model()
    trace = drifting_trace()
    schedulers = {}
    for name, use_delta in (("delta", True), ("reference", False)):
        placement = Placement.balanced(16, 8, auto_slots_per_gpu(16, 8))
        policy = PolicyMaker(cost_model, use_delta=use_delta)
        schedulers[name] = Scheduler(
            placement,
            policy,
            SchedulerConfig(delta_evaluation=use_delta),
            topology,
        )
    for step in range(trace.num_steps):
        assignment = trace.step(step)
        out_d = schedulers["delta"].on_step(assignment, step)
        out_r = schedulers["reference"].on_step(assignment, step)
        assert out_d.actions == out_r.actions, f"diverged at step {step}"
        assert out_d.triggered == out_r.triggered
        assert out_d.rounds == out_r.rounds
    assert schedulers["delta"].total_actions() > 0
    assert (
        schedulers["delta"].placement.signature()
        == schedulers["reference"].placement.signature()
    )


def test_multilayer_engine_runs_identical():
    """The pipelined engine produces identical placements and timings."""
    model = MoEModelConfig(
        "eq-pipe", num_layers=4, d_model=512, d_ffn=2048, num_experts=16
    )
    trace = make_multilayer_trace(
        2, 16, 8,
        WorkloadConfig(tokens_per_step=16_384 * 8, num_steps=15, seed=0),
    )
    results = {}
    signatures = {}
    for use_delta in (True, False):
        engine = build_engine(
            ClusterConfig(num_nodes=1, gpus_per_node=8),
            model,
            num_moe_layers=2,
            scheduler_config=SchedulerConfig(delta_evaluation=use_delta),
            seed=0,
        )
        results[use_delta] = simulate_pipeline(engine, trace, warmup=2)
        signatures[use_delta] = engine.placement_signatures()
    assert signatures[True] == signatures[False]
    assert np.array_equal(
        results[True].step_times, results[False].step_times
    )
    actions = [
        sum(r.scheduling_actions for r in results[flag].results)
        for flag in (True, False)
    ]
    assert actions[0] == actions[1] > 0


def test_faults_scenario_runs_identical():
    """Elastic runs with failures and stragglers mid-search agree too."""
    faults = FaultConfig(
        num_failures=1,
        failure_step=6,
        recovery_steps=8,
        num_stragglers=1,
        straggler_factor=0.5,
        straggler_step=3,
        seed=0,
    )
    summaries = {}
    for use_delta in (True, False):
        result = faults_run(
            num_moe_layers=2,
            num_gpus=8,
            num_experts=16,
            num_steps=25,
            warmup=3,
            faults=faults,
            seed=0,
            delta_evaluation=use_delta,
        )
        summaries[use_delta] = result.summary()
        assert result.flexmoe_rehomed
    assert summaries[True]["flexmoe_actions"] == summaries[False][
        "flexmoe_actions"
    ]
    assert summaries[True]["flexmoe"]["final"] == pytest.approx(
        summaries[False]["flexmoe"]["final"], rel=1e-12
    )
    assert summaries[True]["baseline"]["final"] == pytest.approx(
        summaries[False]["baseline"]["final"], rel=1e-12
    )
