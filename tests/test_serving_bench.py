"""The serving comparison harness and the ``serve`` CLI subcommand."""

import json

import pytest

from repro.bench.serving import (
    MULTITENANT_REPORT_FILENAME,
    REPORT_FILENAME,
    multitenant_run,
    probe_batch_seconds,
    serving_run,
    write_report,
)
from repro.cli import main
from repro.config import FaultConfig

#: One small scenario shared by the harness tests (module-scoped: the
#: comparison runs two full servers, so compute it once).
SMALL = dict(
    num_moe_layers=1,
    num_gpus=4,
    num_experts=8,
    num_requests=80,
    mean_tokens=256,
    max_batch_tokens=2048,
    seed=0,
)


@pytest.fixture(scope="module")
def small_result():
    return serving_run(**SMALL)


class TestProbe:
    def test_probe_positive_and_deterministic(self):
        a = probe_batch_seconds(1, 4, 8, 2048, seed=0)
        b = probe_batch_seconds(1, 4, 8, 2048, seed=0)
        assert a > 0
        assert a == b


class TestServingRun:
    def test_reports_cover_the_stream(self, small_result):
        for report in (small_result.flexmoe, small_result.static):
            assert (
                len(report.records) + len(report.rejected)
                == SMALL["num_requests"]
            )
            assert report.num_batches > 0
            assert report.sim_duration > 0

    def test_summary_shape(self, small_result):
        summary = small_result.summary()
        assert summary["suite"] == "serving_latency"
        assert summary["regression"] == (not summary["ok"])
        for key in ("flexmoe", "static"):
            section = summary[key]
            assert section["p50_latency_s"] <= section["p99_latency_s"]
            assert 0.0 <= section["slo_attainment"] <= 1.0
        assert summary["scenario"]["rate_rps"] > 0
        assert summary["slo_latency_s"] > 0

    def test_deterministic(self):
        a = serving_run(**SMALL).summary()
        b = serving_run(**SMALL).summary()
        assert a == b

    def test_default_scenario_beats_static(self):
        """Acceptance: dynamic placement strictly better p99 AND goodput
        on the skewed/bursty scenario."""
        result = serving_run(num_requests=250, seed=0)
        assert result.ok
        assert result.flexmoe.p99 < result.static.p99
        assert (
            result.flexmoe.goodput_tokens_per_s
            > result.static.goodput_tokens_per_s
        )
        assert result.flexmoe.placement_actions > 0
        assert result.static.placement_actions == 0

    def test_faulted_run_survives(self):
        result = serving_run(
            **{**SMALL, "num_requests": 60},
            faults=FaultConfig(
                num_failures=1, failure_step=2, recovery_steps=4, seed=0
            ),
        )
        assert result.scenario["num_faults"] > 0
        report = result.flexmoe
        assert len(report.records) + len(report.rejected) == 60

    def test_write_report(self, small_result, tmp_path):
        path = write_report(small_result.summary(), tmp_path / REPORT_FILENAME)
        payload = json.loads(path.read_text())
        assert payload["suite"] == "serving_latency"
        assert "regression" in payload


@pytest.fixture(scope="module")
def multitenant_result():
    return multitenant_run(num_requests=120, seed=0)


class TestMultiTenantRun:
    def test_reports_cover_the_merged_stream(self, multitenant_result):
        offered = sum(
            row["num_requests"] for row in multitenant_result.tenants
        )
        for report in (multitenant_result.flexmoe, multitenant_result.fifo):
            assert (
                len(report.records) + len(report.rejected) == offered
            )
            assert report.tenancy is not None
            assert report.tenancy.num_tenants == 3

    def test_summary_shape(self, multitenant_result):
        summary = multitenant_result.summary()
        assert summary["suite"] == "multitenant_serving"
        assert summary["regression"] == (not summary["ok"])
        assert len(summary["tenants"]) == 3
        for key in ("flexmoe", "fifo"):
            section = summary[key]
            assert set(section["per_class"]) == {"interactive", "batch"}
            assert len(section["per_tenant"]) == 3
            assert 0.0 <= section["jain_fairness"] <= 1.0
        att = summary["interactive_attainment"]
        assert summary["attainment_gain"] == att["flexmoe"] - att["fifo"]

    def test_deterministic(self):
        kwargs = dict(num_requests=80, seed=3)
        assert multitenant_run(**kwargs).summary() == multitenant_run(
            **kwargs
        ).summary()

    def test_acceptance_priority_beats_fifo_on_interactive(self):
        """ISSUE-7 acceptance: priority admission strictly above
        static+FIFO on interactive attainment, fairness above the
        floor, and preemption actually exercised."""
        result = multitenant_run(num_requests=200, seed=0)
        assert result.ok
        flex, fifo = result.flexmoe, result.fifo
        assert result.interactive_attainment(
            flex
        ) > result.interactive_attainment(fifo)
        assert flex.jain_fairness_index() >= result.fairness_floor
        assert flex.tenancy.preemptions > 0
        assert fifo.tenancy.preemptions == 0
        assert flex.placement_actions > 0
        assert fifo.placement_actions == 0


class TestServeCLI:
    ARGS = [
        "serve",
        "--layers", "1",
        "--experts", "8",
        "--gpus", "4",
        "--requests", "60",
        "--mean-tokens", "256",
        "--batch-tokens", "2048",
    ]

    def test_human_readable(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "FlexMoE-serving" in out
        assert "StaticServing" in out
        assert "p99 speedup" in out
        assert (tmp_path / REPORT_FILENAME).exists()

    def test_json_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suite"] == "serving_latency"
        on_disk = json.loads((tmp_path / REPORT_FILENAME).read_text())
        assert on_disk == payload

    def test_smoke_gate_passes_and_writes_report(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["serve", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "serve smoke: OK" in out
        payload = json.loads((tmp_path / REPORT_FILENAME).read_text())
        assert payload["ok"] is True
        assert payload["regression"] is False

    def test_failure_scenario(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(self.ARGS + ["--failures", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"]["num_faults"] > 0

    def test_unwritable_output_fails_fast(self, capsys, tmp_path):
        target = tmp_path / "missing-dir" / "report.json"
        assert main(self.ARGS + ["--output", str(target)]) == 2
        assert "cannot write report" in capsys.readouterr().err


class TestServeMultiTenantCLI:
    def test_smoke_gate_passes_and_writes_report(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["serve", "--multi-tenant", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "serve multi-tenant smoke: OK" in out
        assert "FlexMoE+priority" in out
        assert "Jain fairness" in out
        payload = json.loads(
            (tmp_path / MULTITENANT_REPORT_FILENAME).read_text()
        )
        assert payload["suite"] == "multitenant_serving"
        assert payload["ok"] is True
        assert payload["regression"] is False
        att = payload["interactive_attainment"]
        assert att["flexmoe"] > att["fifo"]
        assert payload["jain_fairness"] >= payload["fairness_floor"]

    def test_json_output_matches_disk(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["serve", "--multi-tenant", "--smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        on_disk = json.loads(
            (tmp_path / MULTITENANT_REPORT_FILENAME).read_text()
        )
        assert on_disk == payload

    def test_output_override(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "custom.json"
        assert main(
            ["serve", "--multi-tenant", "--smoke", "--output", str(target)]
        ) == 0
        assert target.exists()
        assert not (tmp_path / MULTITENANT_REPORT_FILENAME).exists()
