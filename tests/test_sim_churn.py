"""Closed SLO loop under capacity loss: autoscaler, churn, degradation.

The ISSUE-8 invariant layer. A Hypothesis property pins the elastic
engine's churn semantics -- across any interleaving of revoke (with its
notice-window drain), provision, fail and recover events the live-set
accounting is conserved, no placement keeps a replica on a dead device,
and every expert survives while the pool stays at or above the
replication floor. Around it: deterministic unit coverage of
:class:`~repro.sim.churn.SpotRevocationSource` (wave delivery, notice
drains, outage recovery, dead-device skips),
:class:`~repro.sim.sources.AutoscalerSource` (pressure scale-up with
provisioning delay, calm scale-down, notice-window replacement
requests), the cost integral :func:`device_seconds_provisioned`, and the
paired churn experiment plus graceful-degradation pair the
``python -m repro churn`` benchmark gates on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import cluster_for
from repro.cluster.events import ClusterEvent, ClusterState, ElasticitySchedule
from repro.config import MoEModelConfig
from repro.core.trigger import TriggerSignals
from repro.exceptions import ConfigurationError, SimulationError
from repro.runtime.pipeline import build_engine
from repro.serving.baseline import serving_scheduler_config
from repro.sim.churn import (
    ChurnScenarioConfig,
    SpotRevocationSource,
    build_churn_scenario,
    churn_scenario_run,
    device_seconds_provisioned,
)
from repro.sim.kernel import Priority
from repro.sim.scenario import Scenario
from repro.sim.sources import AutoscalerSource


# ---------------------------------------------------------------------------
# A minimal engine stand-in: the churn sources only touch the cluster
# state, the event log, and the two capacity entry points.
# ---------------------------------------------------------------------------
class StubEngine:
    DRAIN_SECONDS_PER_GPU = 0.25

    def __init__(self, num_gpus=6, initial_live=4):
        self.cluster_state = ClusterState(num_gpus, initial_live=initial_live)
        self.event_log = []
        self.drained = []

    def apply_cluster_events(self, events, when):
        for event in events:
            if event.kind in ("fail", "revoke"):
                if not self.cluster_state.is_alive(event.gpu):
                    continue
                self.cluster_state.fail(event.gpu)
            elif event.kind == "provision":
                if self.cluster_state.is_alive(event.gpu):
                    continue
                self.cluster_state.provision(event.gpu, event.factor)
            elif event.kind == "recover":
                if self.cluster_state.is_alive(event.gpu):
                    continue
                self.cluster_state.recover(event.gpu)
            self.event_log.append((when, event))

    def notify_revocation(self, gpus):
        doomed = tuple(
            g for g in gpus if self.cluster_state.is_alive(int(g))
        )
        self.drained.append(doomed)
        return self.DRAIN_SECONDS_PER_GPU * len(doomed)


def signals(p99=None, queue=0.0, attainment=None):
    return TriggerSignals(
        step=0,
        balance_metric=None,
        p99_latency=p99,
        queue_tokens=queue,
        slo_attainment=attainment,
    )


class ScriptedProbe:
    """Replays a fixed signal sequence, holding the last one forever."""

    def __init__(self, sequence):
        self._sequence = list(sequence)
        self.calls = 0

    def __call__(self):
        index = min(self.calls, len(self._sequence) - 1)
        self.calls += 1
        return self._sequence[index]


class CallAt:
    """Schedules one callable on the kernel at a fixed time."""

    def __init__(self, when, fn, priority=Priority.CONTROL):
        self._when = when
        self._fn = fn
        self._priority = priority

    def prime(self, kernel, scenario):
        kernel.schedule_at(self._when, self._fn, self._priority, label="call")


# ---------------------------------------------------------------------------
# ChurnScenarioConfig
# ---------------------------------------------------------------------------
class TestChurnScenarioConfig:
    def test_defaults_are_valid(self):
        config = ChurnScenarioConfig()
        assert config.total_gpus == config.seed_gpus + config.standby_gpus

    @pytest.mark.parametrize(
        "changes",
        [
            {"num_requests": 0},
            {"load": 0.0},
            {"seed_gpus": 1},
            {"standby_gpus": -1},
            {"num_waves": -1},
            {"wave_size": 0},
            # 4 waves x 2 devices would leave zero seed devices.
            {"num_waves": 4, "wave_size": 2},
            {"days": 0.0},
            {"standby_speed_factors": ()},
            {"standby_speed_factors": (0.5, 0.0)},
            {"attainment_floor": 0.0},
            {"attainment_floor": 1.5},
        ],
    )
    def test_validation(self, changes):
        with pytest.raises(ConfigurationError):
            ChurnScenarioConfig(**changes)

    def test_replace_returns_new_config(self):
        base = ChurnScenarioConfig()
        outage = base.replace(recover_after_fraction=0.5)
        assert outage.recover_after_fraction == 0.5
        assert base.recover_after_fraction is None

    def test_smoke_scales_requests_with_floor(self):
        config = ChurnScenarioConfig(num_requests=5000).smoke()
        assert 200 <= config.num_requests < 5000


# ---------------------------------------------------------------------------
# device_seconds_provisioned
# ---------------------------------------------------------------------------
class TestDeviceSeconds:
    def test_constant_pool_is_rectangle(self):
        engine = StubEngine()
        assert device_seconds_provisioned(engine, 4, 10.0) == 40.0

    def test_step_function_integration(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        engine.apply_cluster_events(
            (ClusterEvent(step=0, kind="revoke", gpu=0),), when=1.0
        )
        engine.apply_cluster_events(
            (ClusterEvent(step=0, kind="provision", gpu=4),), when=3.0
        )
        # 4 devices for 1s, 3 devices for 2s, 4 devices for 7s.
        assert device_seconds_provisioned(engine, 4, 10.0) == pytest.approx(
            4 * 1 + 3 * 2 + 4 * 7
        )

    def test_transitions_past_duration_are_clamped(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        engine.apply_cluster_events(
            (ClusterEvent(step=0, kind="revoke", gpu=0),), when=50.0
        )
        assert device_seconds_provisioned(engine, 4, 10.0) == 40.0

    def test_zero_duration_costs_nothing(self):
        assert device_seconds_provisioned(StubEngine(), 4, 0.0) == 0.0


# ---------------------------------------------------------------------------
# SpotRevocationSource
# ---------------------------------------------------------------------------
class TestSpotRevocationSource:
    def test_validation(self):
        engine = StubEngine()
        with pytest.raises(ConfigurationError):
            SpotRevocationSource(engine, [], notice_window=-1.0)
        with pytest.raises(ConfigurationError):
            SpotRevocationSource(engine, [], recover_after=0.0)

    def test_wave_applies_with_notice_and_drain(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        spot = SpotRevocationSource(
            engine, [(5.0, (0, 1))], notice_window=2.0
        )
        Scenario(name="wave", sources=(spot,), duration=10.0).run()
        assert spot.noticed == [(3.0, (0, 1))]
        assert spot.applied == [(5.0, (0, 1))]
        assert not engine.cluster_state.is_alive(0)
        assert not engine.cluster_state.is_alive(1)
        # Notice-time drain plus the deadline re-sweep, both charged.
        assert engine.drained == [(0, 1), (0, 1)]
        assert spot.drain_seconds == pytest.approx(
            2 * 2 * StubEngine.DRAIN_SECONDS_PER_GPU
        )

    def test_no_notice_means_no_drain(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        spot = SpotRevocationSource(engine, [(5.0, (0,))])
        Scenario(name="wave", sources=(spot,), duration=10.0).run()
        assert spot.noticed == []
        assert engine.drained == []
        assert spot.applied == [(5.0, (0,))]

    def test_already_dead_devices_are_skipped(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        engine.cluster_state.fail(1)
        spot = SpotRevocationSource(engine, [(5.0, (0, 1))])
        Scenario(name="wave", sources=(spot,), duration=10.0).run()
        assert spot.applied == [(5.0, (0,))]

    def test_fully_dead_wave_is_not_recorded(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        engine.cluster_state.fail(1)
        spot = SpotRevocationSource(engine, [(5.0, (1,))])
        Scenario(name="wave", sources=(spot,), duration=10.0).run()
        assert spot.applied == []

    def test_outage_mode_recovers_devices(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        spot = SpotRevocationSource(
            engine, [(2.0, (0, 1))], recover_after=3.0
        )
        Scenario(name="outage", sources=(spot,), duration=10.0).run()
        assert spot.applied == [(2.0, (0, 1))]
        assert spot.recovered == [(5.0, (0, 1))]
        assert engine.cluster_state.is_alive(0)
        assert engine.cluster_state.is_alive(1)

    def test_waves_past_horizon_never_fire(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        spot = SpotRevocationSource(engine, [(50.0, (0,))])
        Scenario(name="late", sources=(spot,), duration=10.0).run()
        assert spot.applied == []
        assert engine.cluster_state.is_alive(0)


# ---------------------------------------------------------------------------
# AutoscalerSource
# ---------------------------------------------------------------------------
PRESSURE = signals(p99=10.0)
CALM = signals(p99=0.1, queue=0.0, attainment=1.0)
NEUTRAL = signals(p99=0.9, queue=0.0, attainment=1.0)


def make_autoscaler(engine, probe, standby=(4, 5), **overrides):
    kwargs = dict(
        scalable_gpus=standby,
        interval=1.0,
        provisioning_delay=0.5,
        p99_target=1.0,
        queue_limit_tokens=100.0,
        attainment_floor=None,
        scale_down_after=0,
    )
    kwargs.update(overrides)
    return AutoscalerSource(engine, probe, **kwargs)


class TestAutoscalerSource:
    def test_validation(self):
        engine = StubEngine()
        with pytest.raises(SimulationError):
            make_autoscaler(engine, ScriptedProbe([CALM]), interval=0.0)
        with pytest.raises(SimulationError):
            make_autoscaler(
                engine, ScriptedProbe([CALM]), provisioning_delay=-1.0
            )
        with pytest.raises(SimulationError):
            make_autoscaler(engine, ScriptedProbe([CALM]), p99_target=0.0)
        with pytest.raises(SimulationError):
            make_autoscaler(
                engine, ScriptedProbe([CALM]), scale_down_margin=0.0
            )

    def test_requires_finite_horizon(self):
        engine = StubEngine()
        auto = make_autoscaler(engine, ScriptedProbe([CALM]))
        with pytest.raises(SimulationError):
            Scenario(name="open", sources=(auto,), duration=None).run()

    def test_pressure_scales_up_after_delay(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        auto = make_autoscaler(
            engine,
            ScriptedProbe([PRESSURE, PRESSURE, NEUTRAL]),
            provisioning_delay=0.5,
            speed_factors={5: 0.5},
        )
        Scenario(name="up", sources=(auto,), duration=10.0).run()
        assert auto.scale_ups == 2
        assert auto.provisioned_gpus == (4, 5)
        assert engine.cluster_state.is_alive(4)
        assert engine.cluster_state.is_alive(5)
        # The heterogeneous standby device joined at its slower factor.
        assert engine.cluster_state.speed_of(5) == 0.5
        actions = [action for _, action, _ in auto.decisions]
        assert actions == ["request", "provision", "request", "provision"]
        # Requests at the first two ticks, arrivals one delay later.
        times = [when for when, _, _ in auto.decisions]
        assert times == [1.0, 1.5, 2.0, 2.5]

    def test_calm_never_scales(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        auto = make_autoscaler(engine, ScriptedProbe([CALM]))
        Scenario(name="idle", sources=(auto,), duration=10.0).run()
        assert auto.scale_ups == 0
        assert auto.decisions == []

    def test_provision_past_horizon_never_delivers(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        auto = make_autoscaler(
            engine, ScriptedProbe([PRESSURE, NEUTRAL]),
            provisioning_delay=100.0,
        )
        Scenario(name="late", sources=(auto,), duration=10.0).run()
        assert [a for _, a, _ in auto.decisions] == ["request"]
        assert auto.scale_ups == 0
        assert not engine.cluster_state.is_alive(4)

    def test_calm_streak_releases_newest_to_standby(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        probe = ScriptedProbe([PRESSURE] + [CALM] * 10)
        auto = make_autoscaler(engine, probe, scale_down_after=3)
        Scenario(name="down", sources=(auto,), duration=10.0).run()
        assert auto.scale_ups == 1
        assert auto.scale_downs == 1
        assert auto.provisioned_gpus == ()
        # Released devices go back to the standby pool, dark again.
        assert not engine.cluster_state.is_alive(4)
        actions = [a for _, a, _ in auto.decisions]
        assert actions == ["request", "provision", "revoke"]
        # Pressure at t=1, arrival t=1.5, calm ticks t=2..4 release at 4.
        assert auto.decisions[-1][0] == 4.0

    def test_scale_down_disabled_by_default(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        probe = ScriptedProbe([PRESSURE] + [CALM] * 20)
        auto = make_autoscaler(engine, probe, scale_down_after=0)
        Scenario(name="hold", sources=(auto,), duration=10.0).run()
        assert auto.scale_downs == 0
        assert engine.cluster_state.is_alive(4)

    def test_notice_drains_and_requests_replacements(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        auto = make_autoscaler(
            engine, ScriptedProbe([NEUTRAL]), provisioning_delay=0.5
        )
        notice = CallAt(2.2, lambda: auto.on_revocation_notice((0, 1)))
        Scenario(name="notice", sources=(auto, notice), duration=10.0).run()
        assert auto.notices == 1
        assert engine.drained == [(0, 1)]
        assert auto.drain_seconds == pytest.approx(
            2 * StubEngine.DRAIN_SECONDS_PER_GPU
        )
        # One replacement request per doomed device, delivered after the
        # provisioning delay.
        assert auto.scale_ups == 2
        assert engine.cluster_state.is_alive(4)
        assert engine.cluster_state.is_alive(5)

    def test_notice_reclaims_controller_provisioned_device(self):
        engine = StubEngine(num_gpus=6, initial_live=4)
        probe = ScriptedProbe([PRESSURE, NEUTRAL])
        auto = make_autoscaler(engine, probe, provisioning_delay=0.0)
        notice = CallAt(3.0, lambda: auto.on_revocation_notice((4,)))
        Scenario(name="reclaim", sources=(auto, notice), duration=10.0).run()
        # GPU 4 was provisioned by the controller, then reclaimed by the
        # spot notice: it must leave the LIFO scale-down book (a dead
        # device is not releasable capacity) and trigger a replacement.
        assert 4 not in auto.provisioned_gpus
        assert auto.provisioned_gpus == (5,)
        assert auto.scale_ups == 2


# ---------------------------------------------------------------------------
# The Hypothesis interleaving property on a real elastic engine
# ---------------------------------------------------------------------------
def make_property_engine():
    model = MoEModelConfig(
        name="churn-prop", num_layers=4, d_model=64, d_ffn=256,
        num_experts=4,
    )
    cluster = cluster_for(8)
    schedule = ElasticitySchedule(())
    return build_engine(
        cluster,
        model,
        num_moe_layers=2,
        scheduler_config=serving_scheduler_config(
            model, cluster, schedule, migrate=True
        ),
        elasticity=schedule,
        seed=0,
        inference=True,
        initial_live=6,
    )


OPS = st.lists(
    st.tuples(
        st.sampled_from(("revoke", "fail", "provision", "recover")),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=15, deadline=None)
@given(ops=OPS)
def test_property_churn_interleavings_conserve_the_pool(ops):
    """Any revoke/provision/fail/recover interleaving keeps the books.

    After every event (with the serving stream granted bandwidth in
    between, as in a live scenario): the engine's live set matches an
    independently tracked mirror, no placement -- active or target --
    keeps a replica on a dead device, and every expert of every layer
    still owns at least one live replica. Losses that would breach the
    floor guards are skipped, mirroring ClusterState's own last-device
    protection.
    """
    engine = make_property_engine()
    state = engine.cluster_state
    live = set(state.live_gpus())
    clock = 0.0
    for kind, gpu in ops:
        clock += 1.0
        if kind in ("revoke", "fail"):
            # Keep the pool at or above the replication floor; real
            # deployments cap correlated loss the same way the churn
            # scenario's wave constraint does.
            if gpu not in live or len(live) <= 2:
                continue
            if kind == "revoke":
                # Spot semantics: the notice-window drain runs first.
                engine.notify_revocation((gpu,))
            engine.apply_cluster_events(
                (ClusterEvent(step=0, kind=kind, gpu=gpu),), when=clock
            )
            live.discard(gpu)
        else:
            if gpu in live:
                continue
            engine.apply_cluster_events(
                (ClusterEvent(step=0, kind=kind, gpu=gpu),), when=clock
            )
            live.add(gpu)
        # The serving stream keeps draining between events.
        engine.advance_streams(1e9)

        assert set(state.live_gpus()) == live
        dead = [g for g in range(state.num_gpus) if g not in live]
        for layer in engine.layers:
            for placement in (
                layer.active_placement, layer.target_placement
            ):
                counts = placement.counts
                assert counts[:, dead].sum() == 0, (
                    f"replica on dead device after {kind}({gpu})"
                )
                survivors = counts[:, sorted(live)].sum(axis=1)
                assert (survivors >= 1).all(), (
                    f"expert lost every replica after {kind}({gpu})"
                )


# ---------------------------------------------------------------------------
# The paired experiment end to end
# ---------------------------------------------------------------------------
class TestChurnScenario:
    @pytest.fixture(scope="class")
    def smoke_report(self):
        return churn_scenario_run(smoke=True)

    def test_smoke_pair_passes_its_gate(self, smoke_report):
        assert smoke_report["ok"] is True
        assert smoke_report["regression"] is False
        assert smoke_report["attainment_gain"] > 0

    def test_report_shape(self, smoke_report):
        assert smoke_report["suite"] == "autoscale_churn"
        for arm in ("fixed", "autoscaled"):
            data = smoke_report[arm]
            assert data["requests_unaccounted"] == 0
            assert data["experts_survive"] is True
            assert data["device_seconds"] > 0
            assert 0.0 <= data["slo_attainment"] <= 1.0
        assert "autoscaler" not in smoke_report["fixed"]
        controller = smoke_report["autoscaled"]["autoscaler"]
        assert controller["scale_ups"] > 0
        assert controller["notices"] > 0
        assert controller["decisions"]

    def test_waves_and_notices_delivered(self, smoke_report):
        scenario = smoke_report["scenario"]
        expected = scenario["num_waves"] * scenario["wave_size"]
        assert smoke_report["fixed"]["devices_revoked"] == expected
        assert smoke_report["autoscaled"]["devices_revoked"] == expected
        assert (
            smoke_report["fixed"]["notices_delivered"]
            == scenario["num_waves"]
        )

    def test_autoscaled_pool_grows_beyond_seed(self, smoke_report):
        # The controller provisioned real capacity: the autoscaled arm
        # billed more device-seconds than a fixed pool shrunk by
        # revocations ever could.
        provenance = smoke_report["provenance"]
        assert provenance["seed_gpus"] == 8
        assert smoke_report["autoscaled"]["device_seconds"] > 0

    def test_build_scenario_wires_the_pair(self):
        config = ChurnScenarioConfig(num_requests=10)
        fixed = build_churn_scenario(config, autoscale=False)
        assert fixed.autoscaler is None
        assert len(fixed.scenario.sources) == 2
        auto = build_churn_scenario(config, autoscale=True)
        assert auto.autoscaler is not None
        assert len(auto.scenario.sources) == 3
        assert auto.provenance["waves"] == fixed.provenance["waves"]


# ---------------------------------------------------------------------------
# The benchmark layer: churn matrix + graceful-degradation pair
# ---------------------------------------------------------------------------
class TestChurnBench:
    def test_matrix_covers_the_four_variants(self):
        from repro.bench.churn import churn_matrix_configs

        configs = churn_matrix_configs(seed=3)
        assert set(configs) == {
            "spot", "outage", "heterogeneous", "multiday"
        }
        assert configs["spot"].recover_after_fraction is None
        assert configs["outage"].recover_after_fraction is not None
        assert any(
            f < 1.0 for f in configs["heterogeneous"].standby_speed_factors
        )
        assert configs["multiday"].days > configs["spot"].days
        assert all(c.seed == 3 for c in configs.values())

    def test_degradation_pair_gates(self):
        from repro.bench.churn import degradation_run

        result = degradation_run(smoke=True)
        assert result["ok"] is True, result["gates"]
        shed_on = result["shed_on"]["serving"]
        shed_off = result["shed_off"]["serving"]
        # The shed arm tracked every shed request against the batch
        # class; nothing vanished in either arm.
        assert shed_on["shed_requests"] > 0
        assert shed_on["per_class"]["interactive"]["requests_shed"] == 0
        assert result["shed_on"]["requests_unaccounted"] == 0
        assert result["shed_off"]["requests_unaccounted"] == 0
        # Graceful: interactive attainment degrades strictly later than
        # batch, and shedding never hurts the protected class.
        assert (
            shed_on["per_class"]["interactive"]["slo_attainment"]
            > shed_on["per_class"]["batch"]["slo_attainment"]
        )
        assert (
            shed_on["per_class"]["interactive"]["slo_attainment"]
            >= shed_off["per_class"]["interactive"]["slo_attainment"]
        )

    def test_full_report_shape_and_persistence(self, tmp_path):
        from repro.bench.churn import (
            CHURN_REPORT_FILENAME,
            churn_bench_run,
            write_churn_report,
        )

        report = churn_bench_run(smoke=True)
        assert report["suite"] == "autoscale_churn"
        assert report["ok"] is True
        assert report["regression"] is False
        assert set(report["rows"]) == {
            "spot", "outage", "heterogeneous", "multiday"
        }
        for row in report["rows"].values():
            assert row["ok"] is True
            assert row["attainment_gain"] > 0
        path = write_churn_report(report, tmp_path / CHURN_REPORT_FILENAME)
        import json

        persisted = json.loads(path.read_text())
        assert persisted["ok"] is True
        assert persisted["degradation"]["gates"]["shed_engaged"] is True
