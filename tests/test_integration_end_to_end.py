"""Integration tests: full pipelines across modules."""

import numpy as np
import pytest

from repro.baselines import (
    ExpertParallelSystem,
    FasterMoESystem,
    FlexMoESystem,
    SwipeSystem,
    build_context,
)
from repro.config import (
    ClusterConfig,
    MoEModelConfig,
    SchedulerConfig,
    WorkloadConfig,
)
from repro.core.flow_control import GateFlowController
from repro.training.convergence import ConvergenceModel
from repro.training.loop import compare_systems
from repro.training.quality import train_classifier
from repro.workload.datasets import ClusterClassificationDataset


@pytest.fixture(scope="module")
def comparison():
    model = MoEModelConfig("e2e", 4, 512, 2048, 16)
    cluster = ClusterConfig(num_nodes=2, gpus_per_node=4)
    workload = WorkloadConfig(tokens_per_step=524_288, num_steps=18, seed=4)
    return compare_systems(
        model,
        cluster,
        workload,
        systems=[
            ExpertParallelSystem,
            SwipeSystem,
            FasterMoESystem,
            FlexMoESystem,
        ],
        warmup=6,
    )


class TestSystemShapeClaims:
    """The paper's qualitative claims must hold on a small workload."""

    def test_deepspeed_has_smallest_iteration_time(self, comparison):
        ds = comparison["DeepSpeed"].mean_step_time
        for other in ("FasterMoE", "FlexMoE"):
            assert ds <= comparison[other].mean_step_time

    def test_flexmoe_beats_fastermoe_step_time(self, comparison):
        assert (
            comparison["FlexMoE"].mean_step_time
            < comparison["FasterMoE"].mean_step_time
        )

    def test_flexmoe_wins_time_to_quality(self, comparison):
        """Figure 5's headline: FlexMoE > FasterMoE > DeepSpeed on TTQ."""
        model = ConvergenceModel()
        ttq = {
            name: comparison[name].time_to_quality(10_000, model)
            for name in ("DeepSpeed", "FasterMoE", "FlexMoE")
        }
        assert ttq["FlexMoE"] < ttq["DeepSpeed"]
        assert ttq["FlexMoE"] < ttq["FasterMoE"]

    def test_figure7a_efficiency_quadrants(self, comparison):
        """Token/expert-efficiency placement of each system (Fig 7a)."""
        ds = comparison["DeepSpeed"].trajectory
        swipe = comparison["SWIPE"].trajectory
        faster = comparison["FasterMoE"].trajectory
        flex = comparison["FlexMoE"].trajectory
        # SWIPE: perfect expert efficiency, poor token efficiency.
        assert swipe.mean_expert_efficiency > 0.99
        assert swipe.mean_token_efficiency < 1.0
        # FasterMoE / FlexMoE: perfect token efficiency.
        assert faster.mean_token_efficiency == 1.0
        assert flex.mean_token_efficiency == 1.0
        # FlexMoE is closest to the ideal corner among non-SWIPE systems.
        assert flex.distance_to_ideal() < ds.distance_to_ideal()
        assert flex.distance_to_ideal() < faster.distance_to_ideal()

    def test_flexmoe_improves_balance_over_run(self, comparison):
        balances = [r.balance for r in comparison["FlexMoE"].results]
        assert balances[-1] < 2.0


class TestFlowControlIntegration:
    def test_flexmoe_with_flow_control_defers_spikes(self):
        model = MoEModelConfig("fc", 4, 256, 1024, 8)
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=4)
        context = build_context(cluster, model, seed=1)
        controller = GateFlowController(watermark_factor=1.5)
        system = FlexMoESystem(context, flow_control=controller)
        rng = np.random.default_rng(0)
        spike = np.full((8, 4), 100, dtype=np.int64)
        spike[0] = 50_000
        total_assigned = 0
        total_processed = 0
        for step in range(10):
            result = system.step(spike, step)
            total_assigned += result.assigned_tokens
            total_processed += result.processed_tokens
        # Deferral, not dropping: backlog accounts for the difference.
        assert total_processed + controller.backlog_tokens == total_assigned


class TestQualityToSimulatorBridge:
    def test_real_training_trace_feeds_simulator(self):
        dataset = ClusterClassificationDataset(
            num_classes=6, num_clusters=6, input_dim=16, seed=0
        )
        result = train_classifier(
            dataset, steps=30, batch_size=64, num_experts=8,
            d_model=16, num_layers=2, eval_every=15, seed=0,
        )
        trace = result.routing_trace(num_gpus=4, seed=0)
        assert trace.num_steps == 30
        assert trace.num_experts == 8
        # Feed the measured trace into a system.
        model = MoEModelConfig("bridge", 2, 256, 1024, 8)
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=4)
        context = build_context(cluster, model, seed=0)
        system = ExpertParallelSystem(context, capacity_factor=None)
        outcome = system.step(trace.step(0), 0)
        assert outcome.step_time > 0


class TestSchedulerAblationModes:
    def test_static_and_variance_modes_run(self):
        model = MoEModelConfig("abl", 4, 256, 1024, 8)
        cluster = ClusterConfig(num_nodes=1, gpus_per_node=4)
        workload = WorkloadConfig(tokens_per_step=131_072, num_steps=8, seed=1)
        for config in (
            SchedulerConfig(mode="static", static_interval=4),
            SchedulerConfig(metric="variance"),
            SchedulerConfig(migrate=False),
            SchedulerConfig(best_effort=False),
        ):
            cmp = compare_systems(
                model, cluster, workload,
                systems=[lambda ctx, c=config: FlexMoESystem(ctx, c)],
            )
            run = cmp["FlexMoE"]
            assert run.mean_token_efficiency == 1.0
