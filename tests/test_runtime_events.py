"""Unit tests for the discrete-event loop."""

import pytest

from repro.exceptions import SimulationError
from repro.runtime.events import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.0, lambda lp: seen.append("b"))
        loop.schedule(1.0, lambda lp: seen.append("a"))
        loop.schedule(3.0, lambda lp: seen.append("c"))
        loop.run()
        assert seen == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda lp: seen.append(1))
        loop.schedule(1.0, lambda lp: seen.append(2))
        loop.run()
        assert seen == [1, 2]

    def test_clock_advances(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda lp: None)
        assert loop.run() == 5.0
        assert loop.now == 5.0

    def test_callbacks_can_schedule_more(self):
        loop = EventLoop()
        seen = []

        def first(lp):
            seen.append("first")
            lp.schedule(1.0, lambda l: seen.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert seen == ["first", "second"]
        assert loop.now == 2.0

    def test_run_until_leaves_future_events(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda lp: seen.append("early"))
        loop.schedule(10.0, lambda lp: seen.append("late"))
        loop.run(until=5.0)
        assert seen == ["early"]
        assert len(loop) == 1
        loop.run()
        assert seen == ["early", "late"]

    def test_schedule_at_absolute(self):
        loop = EventLoop()
        loop.schedule_at(4.0, lambda lp: None)
        assert loop.run() == 4.0

    def test_cannot_schedule_into_past(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda lp: None)
        loop.schedule(2.0, lambda lp: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(1.0, lambda lp: None)

    def test_event_budget_guard(self):
        loop = EventLoop()

        def recur(lp):
            lp.schedule(1.0, recur)

        loop.schedule(1.0, recur)
        with pytest.raises(SimulationError):
            loop.run(max_events=100)
