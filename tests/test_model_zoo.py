"""Unit tests for the Table 1 model registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.model.zoo import (
    MODEL_ZOO,
    NLP_VOCAB,
    PAPER_PARAMS,
    estimate_total_params,
    get_model_config,
    moe_layer_count,
    params_match_paper,
)


class TestZoo:
    def test_six_models_registered(self):
        assert len(MODEL_ZOO) == 6
        assert set(MODEL_ZOO) == set(PAPER_PARAMS)

    def test_table1_expert_counts(self):
        assert get_model_config("BERT-MoE-S").num_experts == 32
        assert get_model_config("BERT-MoE-L").num_experts == 64
        assert get_model_config("GPT-MoE-L").d_model == 2048
        assert get_model_config("GPT-MoE-L").d_ffn == 8192

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            get_model_config("GPT-5-MoE")

    def test_moe_every_other_layer(self):
        assert moe_layer_count(get_model_config("BERT-MoE-S")) == 6
        assert moe_layer_count(get_model_config("BERT-MoE-L")) == 12

    def test_bert_s_params_match_paper(self):
        """Validation of our reading of Table 1: derived ~ printed."""
        config = get_model_config("BERT-MoE-S")
        derived = estimate_total_params(config, NLP_VOCAB)
        assert derived == pytest.approx(0.988e9, rel=0.05)

    def test_bert_l_params_match_paper(self):
        config = get_model_config("BERT-MoE-L")
        derived = estimate_total_params(config, NLP_VOCAB)
        assert derived == pytest.approx(6.69e9, rel=0.05)

    def test_params_match_helper(self):
        assert params_match_paper("BERT-MoE-S", tolerance=0.05)
        assert params_match_paper("BERT-MoE-L", tolerance=0.05)
        # Swin approximations are looser (paper omits the dims).
        assert params_match_paper("Swin-MoE-S", tolerance=0.35)

    def test_all_models_use_top2(self):
        assert all(cfg.top_k == 2 for cfg in MODEL_ZOO.values())
